package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"net/http"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"regenrand"
)

// modelJSON is the wire encoding of a CTMC.
type modelJSON struct {
	States      int         `json:"states"`
	Transitions [][]float64 `json:"transitions"`
	Initial     [][]float64 `json:"initial"`
}

// compileRequest configures one compile.
type compileRequest struct {
	Model *modelJSON `json:"model"`
	// RegenState is the regenerative state (-1 = none). Defaults to 0, the
	// paper's fault-free initial state.
	RegenState *int `json:"regen_state,omitempty"`
	// Epsilon is the error bound (default 1e-12, the paper's choice).
	Epsilon float64 `json:"epsilon,omitempty"`
	// DisableRetention trades rebinding speed for memory; see
	// regenrand.CompileOptions.
	DisableRetention bool `json:"disable_retention,omitempty"`
	// Compact retains the stepped series as float32, halving compile-phase
	// memory at a quantified accuracy cost charged against the error
	// budget; needs a loose epsilon (~1e-6 or above). See
	// regenrand.CompileOptions.CompactRetention.
	Compact bool `json:"compact,omitempty"`
	// HorizonBuckets turns on horizon bucketing (grid points per decade):
	// RR/RRL query horizons are rounded UP to a geometric grid so near-miss
	// horizons share one series and one stepping pass. Bucketed answers are
	// still certified within epsilon (strictly more accurate — the series is
	// truncated deeper than the exact horizon needs) but differ from an
	// unbucketed compile's, so the option is part of the model_id and every
	// affected row discloses its certified horizon as "bucketed_horizon".
	// See regenrand.CompileOptions.HorizonBuckets.
	HorizonBuckets int `json:"horizon_buckets,omitempty"`
	// Inverter selects the Laplace inversion backend for RRL queries on this
	// compile: "durbin" (default) or "euler". Part of the model_id — the two
	// backends produce different (both certified-within-epsilon) answers.
	// The euler backend rejects very tight epsilons whose certified roundoff
	// floor cannot be met; such compiles answer 400. Per-query override via
	// the query-level "inverter" field. Every RRL row discloses the backend
	// that served it as "inverter".
	Inverter string `json:"inverter,omitempty"`
	// PrebuildHorizon asks the compile to eagerly extend the regenerative
	// chains to certify this horizon, so the first query at or below it is
	// cheap; queries extend on demand either way, so results are identical.
	PrebuildHorizon float64 `json:"prebuild_horizon,omitempty"`
	// TimeoutMS caps this request's processing time in milliseconds
	// (bounded by the server's -max-timeout; 0 = the server's -timeout
	// default). An exceeded deadline aborts the compile at its next
	// stepping checkpoint and answers 504.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

type compileResponse struct {
	ModelID       string `json:"model_id"`
	States        int    `json:"states"`
	Transitions   int    `json:"transitions"`
	RetainedBytes int64  `json:"retained_bytes"`
}

type queryJSON struct {
	Method     string    `json:"method,omitempty"`
	Measure    string    `json:"measure,omitempty"`
	Rewards    []float64 `json:"rewards"`
	Times      []float64 `json:"times"`
	BlockSteps int       `json:"block_steps,omitempty"`
	// Bounds requests certified two-sided enclosures instead of point
	// values (RR/RRL only). RRL enclosures are served by the fused
	// value+truncation-mass inversion, so they cost barely more than the
	// values alone; rows then carry "lower"/"upper" alongside "value" (the
	// midpoint).
	Bounds bool `json:"bounds,omitempty"`
	// Inverter overrides the compile's Laplace inversion backend for this
	// query ("durbin" or "euler"; RRL only — other methods reject it with a
	// per-row error). Queries with different backends are never grouped into
	// one lane pass. The serving row discloses the effective backend.
	Inverter string `json:"inverter,omitempty"`
}

type queryRequest struct {
	ModelID string     `json:"model_id,omitempty"`
	Model   *modelJSON `json:"model,omitempty"`
	// Compile options for inline models; ignored with model_id.
	RegenState       *int        `json:"regen_state,omitempty"`
	Epsilon          float64     `json:"epsilon,omitempty"`
	DisableRetention bool        `json:"disable_retention,omitempty"`
	Compact          bool        `json:"compact,omitempty"`
	HorizonBuckets   int         `json:"horizon_buckets,omitempty"`
	Inverter         string      `json:"inverter,omitempty"`
	Queries          []queryJSON `json:"queries"`
	// TimeoutMS caps this request's processing time in milliseconds
	// (bounded by -max-timeout; 0 = the -timeout default). Queries that
	// miss the deadline report a per-row error; rows that finished in time
	// still carry their full results.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Degrade set to "allow" opts into certified degraded answers: a row
	// whose full-precision evaluation missed the deadline is retried once
	// at the server's looser -degrade-epsilon under a short grace budget.
	// Degraded rows are flagged ("degraded": true) and carry the epsilon
	// their certificate holds at — still a certified answer, just a wider
	// one, which is the paper's own bounded-truncation trade.
	Degrade string `json:"degrade,omitempty"`
}

type resultJSON struct {
	T         float64  `json:"t"`
	Value     float64  `json:"value"`
	Lower     *float64 `json:"lower,omitempty"`
	Upper     *float64 `json:"upper,omitempty"`
	Steps     int      `json:"steps,omitempty"`
	Abscissae int      `json:"abscissae,omitempty"`
}

type queryResultJSON struct {
	Results []resultJSON `json:"results,omitempty"`
	Error   string       `json:"error,omitempty"`
	// Degraded marks a row answered at a loosened (but still certified)
	// epsilon after the full-precision evaluation missed the deadline;
	// Epsilon is the bound the degraded certificate holds at.
	Degraded bool    `json:"degraded,omitempty"`
	Epsilon  float64 `json:"epsilon,omitempty"`
	// BucketedHorizon, on a model compiled with horizon_buckets, is the
	// grid horizon this row's series certified when it differs from the
	// row's own max time — full disclosure that the answer came from a
	// deeper-truncated (more accurate, still certified) series.
	BucketedHorizon float64 `json:"bucketed_horizon,omitempty"`
	// Inverter, on RRL rows, is the Laplace inversion backend that served
	// the row: the query's "inverter" override when set, the compile's
	// backend otherwise. Backends produce different (both certified)
	// answers, so each row says which one it came from.
	Inverter string `json:"inverter,omitempty"`
}

type queryResponse struct {
	ModelID string            `json:"model_id"`
	Results []queryResultJSON `json:"results"`
}

// serverLimits bundles the admission/validation knobs (flag-fed).
type serverLimits struct {
	DefaultTimeout time.Duration // per-request deadline when the client sets none
	MaxTimeout     time.Duration // cap on client-requested timeout_ms
	MaxBody        int64         // request body byte cap (http.MaxBytesReader)
	MaxStates      int           // wire-model state cap
	MaxTransitions int           // wire-model transition cap
	DegradeEpsilon float64       // epsilon of certified degraded answers
	DegradeGrace   time.Duration // extra budget for one degraded retry
}

// admission is one bounded request class: a fixed number of concurrent
// slots plus a bounded, time-limited wait queue. Anything beyond queue
// depth or patience is shed immediately — the server answers a cheap 429
// instead of stacking unbounded goroutines behind a saturated worker pool.
type admission struct {
	slots   chan struct{}
	queued  atomic.Int64
	depth   int64
	maxWait time.Duration
}

func newAdmission(slots, depth int, maxWait time.Duration) *admission {
	if slots < 1 {
		slots = 1
	}
	return &admission{slots: make(chan struct{}, slots), depth: int64(depth), maxWait: maxWait}
}

// acquire returns a release func, or false when the request must be shed
// (queue full, queue wait exhausted, or caller gone).
func (a *admission) acquire(ctx context.Context) (func(), bool) {
	select {
	case a.slots <- struct{}{}:
		return func() { <-a.slots }, true
	default:
	}
	if a.queued.Add(1) > a.depth {
		a.queued.Add(-1)
		return nil, false
	}
	defer a.queued.Add(-1)
	t := time.NewTimer(a.maxWait)
	defer t.Stop()
	select {
	case a.slots <- struct{}{}:
		return func() { <-a.slots }, true
	case <-t.C:
		return nil, false
	case <-ctx.Done():
		return nil, false
	}
}

// server shares one compile cache across every request, gated by per-class
// admission control, per-request deadlines, and a panic barrier per
// handler.
type server struct {
	cache  *regenrand.CompileCache
	limits serverLimits

	compiles *admission // POST /v1/compile
	queries  *admission // POST /v1/query

	draining atomic.Bool
	start    time.Time

	// Counters surfaced by /varz.
	requests         atomic.Int64
	inFlightCompiles atomic.Int64
	inFlightQueries  atomic.Int64
	shed             atomic.Int64
	timeouts         atomic.Int64
	degraded         atomic.Int64
	panics           atomic.Int64
}

// buildModel validates and builds a wire model. Every reject names the
// offending field: the wire format is the trust boundary, so rates must be
// finite and non-negative, indices integral and in range, and the initial
// distribution normalized — a bad model answers 400, never a panic deeper
// in the engine.
func (s *server) buildModel(m *modelJSON) (*regenrand.CTMC, error) {
	if m == nil {
		return nil, fmt.Errorf("model: missing")
	}
	if m.States < 1 {
		return nil, fmt.Errorf("model.states: %d, want >= 1", m.States)
	}
	if m.States > s.limits.MaxStates {
		return nil, fmt.Errorf("model.states: %d exceeds the server cap %d", m.States, s.limits.MaxStates)
	}
	if len(m.Transitions) > s.limits.MaxTransitions {
		return nil, fmt.Errorf("model.transitions: %d entries exceed the server cap %d", len(m.Transitions), s.limits.MaxTransitions)
	}
	b := regenrand.NewBuilder(m.States)
	for i, tr := range m.Transitions {
		if len(tr) != 3 {
			return nil, fmt.Errorf("model.transitions[%d]: want [from, to, rate], got %d fields", i, len(tr))
		}
		from, to, rate := tr[0], tr[1], tr[2]
		if from != math.Trunc(from) || math.IsNaN(from) {
			return nil, fmt.Errorf("model.transitions[%d].from: %v is not an integer state index", i, from)
		}
		if to != math.Trunc(to) || math.IsNaN(to) {
			return nil, fmt.Errorf("model.transitions[%d].to: %v is not an integer state index", i, to)
		}
		if from < 0 || from >= float64(m.States) {
			return nil, fmt.Errorf("model.transitions[%d].from: %v out of range [0, %d)", i, from, m.States)
		}
		if to < 0 || to >= float64(m.States) {
			return nil, fmt.Errorf("model.transitions[%d].to: %v out of range [0, %d)", i, to, m.States)
		}
		if math.IsNaN(rate) || math.IsInf(rate, 0) {
			return nil, fmt.Errorf("model.transitions[%d].rate: %v is not finite", i, rate)
		}
		if rate < 0 {
			return nil, fmt.Errorf("model.transitions[%d].rate: %v is negative", i, rate)
		}
		if err := b.AddTransition(int(from), int(to), rate); err != nil {
			return nil, fmt.Errorf("model.transitions[%d]: %v", i, err)
		}
	}
	var psum float64
	for i, in := range m.Initial {
		if len(in) != 2 {
			return nil, fmt.Errorf("model.initial[%d]: want [state, probability], got %d fields", i, len(in))
		}
		st, p := in[0], in[1]
		if st != math.Trunc(st) || math.IsNaN(st) {
			return nil, fmt.Errorf("model.initial[%d].state: %v is not an integer state index", i, st)
		}
		if st < 0 || st >= float64(m.States) {
			return nil, fmt.Errorf("model.initial[%d].state: %v out of range [0, %d)", i, st, m.States)
		}
		if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 || p > 1 {
			return nil, fmt.Errorf("model.initial[%d].probability: %v outside [0, 1]", i, p)
		}
		psum += p
		if err := b.SetInitial(int(st), p); err != nil {
			return nil, fmt.Errorf("model.initial[%d]: %v", i, err)
		}
	}
	if len(m.Initial) > 0 && math.Abs(psum-1) > 1e-9 {
		return nil, fmt.Errorf("model.initial: probabilities sum to %v, want 1", psum)
	}
	model, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("model: %v", err)
	}
	return model, nil
}

// compileOptions translates the wire options.
func compileOptions(regenState *int, epsilon float64, disableRetention, compact bool, horizonBuckets int, inverter string) regenrand.CompileOptions {
	opts := regenrand.DefaultOptions()
	if epsilon != 0 {
		opts.Epsilon = epsilon
	}
	rs := 0
	if regenState != nil {
		rs = *regenState
	}
	if rs < 0 {
		rs = regenrand.NoRegen
	}
	return regenrand.CompileOptions{
		Options:          opts,
		RegenState:       rs,
		DisableRetention: disableRetention,
		CompactRetention: compact,
		HorizonBuckets:   horizonBuckets,
		RRL:              regenrand.RRLConfig{Inverter: inverter},
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// guard is the per-handler hardening middleware: request counting, drain
// refusal, bounded admission (when class is non-nil), body size capping,
// and a panic barrier — a panicking handler answers 500 and the server
// keeps serving (engine-level panics are already converted to errors by the
// worker pool and the cache; this is the last line).
func (s *server) guard(class *admission, inFlight *atomic.Int64, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		defer func() {
			if rec := recover(); rec != nil {
				s.panics.Add(1)
				log.Printf("regenserve: panic serving %s: %v\n%s", r.URL.Path, rec, debug.Stack())
				writeError(w, http.StatusInternalServerError, "internal error")
			}
		}()
		if s.draining.Load() {
			w.Header().Set("Retry-After", "5")
			writeError(w, http.StatusServiceUnavailable, "server draining")
			return
		}
		if class != nil {
			release, ok := class.acquire(r.Context())
			if !ok {
				s.shed.Add(1)
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusTooManyRequests, "server saturated (admission queue full); retry")
				return
			}
			defer release()
			inFlight.Add(1)
			defer inFlight.Add(-1)
		}
		r.Body = http.MaxBytesReader(w, r.Body, s.limits.MaxBody)
		h(w, r)
	}
}

// decode parses the JSON body, distinguishing an oversized body (413) from
// a malformed one (400).
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", mbe.Limit)
		} else {
			writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		}
		return false
	}
	return true
}

// requestCtx derives this request's deadline: the client's timeout_ms when
// given, the server default otherwise, both capped by MaxTimeout, all
// anchored on the connection context so a disconnected client cancels its
// own work.
func (s *server) requestCtx(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.limits.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if d > s.limits.MaxTimeout {
		d = s.limits.MaxTimeout
	}
	return context.WithTimeout(r.Context(), d)
}

func (s *server) handleCompile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req compileRequest
	if !decode(w, r, &req) {
		return
	}
	model, err := s.buildModel(req.Model)
	if err != nil {
		writeError(w, http.StatusBadRequest, "building model: %v", err)
		return
	}
	if req.HorizonBuckets < 0 {
		writeError(w, http.StatusBadRequest, "horizon_buckets: %d, want >= 0", req.HorizonBuckets)
		return
	}
	copts := compileOptions(req.RegenState, req.Epsilon, req.DisableRetention, req.Compact, req.HorizonBuckets, req.Inverter)
	if req.PrebuildHorizon > 0 && !math.IsInf(req.PrebuildHorizon, 0) && !math.IsNaN(req.PrebuildHorizon) {
		copts.PrebuildHorizon = req.PrebuildHorizon
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	cm, err := s.cache.CompileCtx(ctx, model, copts)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			s.timeouts.Add(1)
			writeError(w, http.StatusGatewayTimeout, "compiling: %v", err)
			return
		}
		if errors.Is(err, context.Canceled) {
			writeError(w, http.StatusServiceUnavailable, "compiling: %v", err)
			return
		}
		writeError(w, http.StatusBadRequest, "compiling: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, compileResponse{
		ModelID:       cm.Key(),
		States:        cm.Model().N(),
		Transitions:   cm.Model().NumTransitions(),
		RetainedBytes: cm.RetainedBytes(),
	})
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req queryRequest
	if !decode(w, r, &req) {
		return
	}
	ctx, cancel := s.requestCtx(r, req.TimeoutMS)
	defer cancel()
	var cm *regenrand.CompiledModel
	switch {
	case req.ModelID != "":
		var ok bool
		cm, ok = s.cache.Get(req.ModelID)
		if !ok {
			writeError(w, http.StatusNotFound, "model %s not cached (evicted or never compiled); re-POST /v1/compile", req.ModelID)
			return
		}
	case req.Model != nil:
		model, err := s.buildModel(req.Model)
		if err != nil {
			writeError(w, http.StatusBadRequest, "building model: %v", err)
			return
		}
		if req.HorizonBuckets < 0 {
			writeError(w, http.StatusBadRequest, "horizon_buckets: %d, want >= 0", req.HorizonBuckets)
			return
		}
		cm, err = s.cache.CompileCtx(ctx, model, compileOptions(req.RegenState, req.Epsilon, req.DisableRetention, req.Compact, req.HorizonBuckets, req.Inverter))
		if err != nil {
			switch {
			case errors.Is(err, context.DeadlineExceeded):
				s.timeouts.Add(1)
				writeError(w, http.StatusGatewayTimeout, "compiling: %v", err)
			case errors.Is(err, context.Canceled):
				writeError(w, http.StatusServiceUnavailable, "compiling: %v", err)
			default:
				writeError(w, http.StatusBadRequest, "compiling: %v", err)
			}
			return
		}
	default:
		writeError(w, http.StatusBadRequest, "need model_id or model")
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "no queries")
		return
	}
	// Value and bounds requests run as two overlapped batches (each also
	// fans out internally over the worker pool, which degrades gracefully
	// when saturated); responses land back in request-indexed slots.
	var valIdx, bndIdx []int
	for i, q := range req.Queries {
		if q.Bounds {
			bndIdx = append(bndIdx, i)
		} else {
			valIdx = append(valIdx, i)
		}
	}
	toQuery := func(q queryJSON) regenrand.Query {
		return regenrand.Query{
			Method:     regenrand.Method(q.Method),
			Measure:    regenrand.MeasureKind(q.Measure),
			Rewards:    q.Rewards,
			Times:      q.Times,
			BlockSteps: q.BlockSteps,
			Inverter:   q.Inverter,
		}
	}
	resp := queryResponse{ModelID: cm.Key(), Results: make([]queryResultJSON, len(req.Queries))}
	var wg sync.WaitGroup
	if len(valIdx) > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			qs := make([]regenrand.Query, len(valIdx))
			for i, idx := range valIdx {
				qs[i] = toQuery(req.Queries[idx])
			}
			for i, qr := range cm.QueryBatchCtx(ctx, qs) {
				idx := valIdx[i]
				if qr.Err != nil {
					resp.Results[idx].Error = qr.Err.Error()
					continue
				}
				rs := make([]resultJSON, len(qr.Results))
				for j, res := range qr.Results {
					rs[j] = resultJSON{T: res.T, Value: res.Value, Steps: res.Steps, Abscissae: res.Abscissae}
				}
				resp.Results[idx].Results = rs
			}
		}()
	}
	if len(bndIdx) > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			qs := make([]regenrand.Query, len(bndIdx))
			for i, idx := range bndIdx {
				qs[i] = toQuery(req.Queries[idx])
			}
			for i, br := range cm.QueryBoundsBatchCtx(ctx, qs) {
				idx := bndIdx[i]
				if br.Err != nil {
					resp.Results[idx].Error = br.Err.Error()
					continue
				}
				rs := make([]resultJSON, len(br.Bounds))
				for j, b := range br.Bounds {
					lo, hi := b.Lower, b.Upper
					rs[j] = resultJSON{T: b.T, Value: (lo + hi) / 2, Lower: &lo, Upper: &hi}
				}
				resp.Results[idx].Results = rs
			}
		}()
	}
	wg.Wait()
	timedOut := false
	for i := range resp.Results {
		if resp.Results[i].Error != "" && ctx.Err() != nil {
			timedOut = true
			break
		}
	}
	if timedOut {
		s.timeouts.Add(1)
		if req.Degrade == "allow" {
			s.degradeRows(r, cm, req, &resp)
		}
	}
	discloseBuckets(cm, req, &resp)
	discloseInverters(cm, req, &resp)
	writeJSON(w, http.StatusOK, resp)
}

// discloseBuckets annotates every successful RR/RRL row whose certified
// horizon was rounded up by horizon bucketing with that grid horizon —
// bucketed answers differ from an unbucketed compile's (more accurate,
// still certified), so each affected row says so. Degraded rows are skipped:
// their retry ran on a separate loose-epsilon compile without bucketing.
func discloseBuckets(cm *regenrand.CompiledModel, req queryRequest, resp *queryResponse) {
	for i, q := range req.Queries {
		row := &resp.Results[i]
		if row.Error != "" || row.Degraded || len(q.Times) == 0 {
			continue
		}
		method := regenrand.Method(q.Method)
		if method == "" && cm.RegenState() != regenrand.NoRegen {
			method = regenrand.MethodRRL // the engine's default on regenerative compiles
		}
		if method != regenrand.MethodRR && method != regenrand.MethodRRL {
			continue
		}
		maxT := q.Times[0]
		for _, t := range q.Times[1:] {
			if t > maxT {
				maxT = t
			}
		}
		if h, bucketed := cm.EffectiveHorizon(maxT); bucketed {
			row.BucketedHorizon = h
		}
	}
}

// discloseInverters annotates every successful RRL row with the Laplace
// inversion backend that served it — the query's override when set, the
// compile's (normalized) backend otherwise. The backends produce different,
// individually certified answers, so each row names its own. Degraded rows
// are included: the degraded retry carries the compile's RRL config and the
// row's own override, so the effective backend is the same.
func discloseInverters(cm *regenrand.CompiledModel, req queryRequest, resp *queryResponse) {
	for i, q := range req.Queries {
		row := &resp.Results[i]
		if row.Error != "" {
			continue
		}
		method := regenrand.Method(q.Method)
		if method == "" && cm.RegenState() != regenrand.NoRegen {
			method = regenrand.MethodRRL // the engine's default on regenerative compiles
		}
		if method != regenrand.MethodRRL {
			continue // only RRL inverts
		}
		if q.Inverter != "" {
			row.Inverter = q.Inverter
		} else {
			row.Inverter = cm.RRLConfig().Inverter
		}
	}
}

// degradeRows retries deadline-missed rows once at the server's loosened
// epsilon under a short grace budget detached from the (already expired)
// request deadline. The degraded compile goes through the shared cache, so
// repeated degraded traffic for one model pays the loose compile once. A
// row whose degraded attempt also fails keeps its original error.
func (s *server) degradeRows(r *http.Request, cm *regenrand.CompiledModel, req queryRequest, resp *queryResponse) {
	degEps := s.limits.DegradeEpsilon
	if cm.Options().Epsilon >= degEps {
		return // already at (or looser than) the degraded bound
	}
	gctx, cancel := context.WithTimeout(context.WithoutCancel(r.Context()), s.limits.DegradeGrace)
	defer cancel()
	// The degraded retry keeps the compile's RRL config (in particular the
	// inversion backend) — a degraded answer loosens epsilon, it does not
	// silently switch numerical methods.
	dcopts := regenrand.CompileOptions{Options: cm.Options(), RegenState: cm.RegenState(), RRL: cm.RRLConfig()}
	dcopts.Options.Epsilon = degEps
	dcm, err := s.cache.CompileCtx(gctx, cm.Model(), dcopts)
	if err != nil {
		return
	}
	for i := range resp.Results {
		if resp.Results[i].Error == "" || gctx.Err() != nil {
			continue
		}
		q := regenrand.Query{
			Method:     regenrand.Method(req.Queries[i].Method),
			Measure:    regenrand.MeasureKind(req.Queries[i].Measure),
			Rewards:    req.Queries[i].Rewards,
			Times:      req.Queries[i].Times,
			BlockSteps: req.Queries[i].BlockSteps,
			Inverter:   req.Queries[i].Inverter,
		}
		if req.Queries[i].Bounds {
			bs, err := dcm.QueryBoundsCtx(gctx, q)
			if err != nil {
				continue
			}
			rs := make([]resultJSON, len(bs))
			for j, b := range bs {
				lo, hi := b.Lower, b.Upper
				rs[j] = resultJSON{T: b.T, Value: (lo + hi) / 2, Lower: &lo, Upper: &hi}
			}
			resp.Results[i] = queryResultJSON{Results: rs, Degraded: true, Epsilon: degEps}
		} else {
			res, err := dcm.QueryCtx(gctx, q)
			if err != nil {
				continue
			}
			rs := make([]resultJSON, len(res))
			for j, v := range res {
				rs[j] = resultJSON{T: v.T, Value: v.Value, Steps: v.Steps, Abscissae: v.Abscissae}
			}
			resp.Results[i] = queryResultJSON{Results: rs, Degraded: true, Epsilon: degEps}
		}
		s.degraded.Add(1)
	}
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	entries, bytes := s.cache.Stats()
	status := http.StatusOK
	ok := true
	if s.draining.Load() {
		status, ok = http.StatusServiceUnavailable, false
	}
	writeJSON(w, status, map[string]any{
		"ok":            ok,
		"draining":      s.draining.Load(),
		"cached_models": entries,
		"cache_bytes":   bytes,
		"uptime_s":      time.Since(s.start).Seconds(),
	})
}

// handleVarz exposes the serving counters: admission state, shed/degraded
// totals, panic count, cache size. Flat keys, one JSON object — scrapable.
func (s *server) handleVarz(w http.ResponseWriter, r *http.Request) {
	entries, bytes := s.cache.Stats()
	es := regenrand.ReadEngineStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_s":           time.Since(s.start).Seconds(),
		"requests":           s.requests.Load(),
		"in_flight_compiles": s.inFlightCompiles.Load(),
		"in_flight_queries":  s.inFlightQueries.Load(),
		"queued_compiles":    s.compiles.queued.Load(),
		"queued_queries":     s.queries.queued.Load(),
		"shed":               s.shed.Load(),
		"timeouts":           s.timeouts.Load(),
		"degraded":           s.degraded.Load(),
		"panics":             s.panics.Load(),
		"cache_entries":      entries,
		"cache_bytes":        bytes,
		"draining":           s.draining.Load(),
		// Engine work-sharing counters (process-wide, monotone): series
		// cache traffic plus in-place chain extensions and the stepping
		// work their reused prefixes saved.
		"series_cache_hits":            es.SeriesCacheHits,
		"series_cache_misses":          es.SeriesCacheMisses,
		"series_extensions":            es.SeriesExtensions,
		"series_extension_steps_saved": es.ExtensionStepsSaved,
		// Durable-snapshot traffic (zero unless -snapshot-dir is set):
		// warm loads vs validation failures (corrupt blobs quarantined and
		// recompiled), write-backs/flushes vs write failures, bytes stored.
		"snapshot_loads":          es.SnapshotLoads,
		"snapshot_load_failures":  es.SnapshotLoadFailures,
		"snapshot_writes":         es.SnapshotWrites,
		"snapshot_write_failures": es.SnapshotWriteFailures,
		"snapshot_bytes_written":  es.SnapshotBytesWritten,
		"snapshot_quarantines":    es.SnapshotQuarantines,
		// Store robustness counters (move under -snapshot-dir/-snapshot-url):
		// backoff retries against a flaky store, hedged reads won by the
		// hedge vs beaten by the primary, circuit-breaker opens and
		// half-open probes. Retries climbing = transient faults; hedges
		// winning = tail latency; breaker opening = the store is down and
		// compiles have stopped waiting for it.
		"store_retries":        es.StoreRetries,
		"store_hedged_won":     es.StoreHedgedReadsWon,
		"store_hedged_lost":    es.StoreHedgedReadsLost,
		"store_breaker_opens":  es.StoreBreakerOpens,
		"store_breaker_probes": es.StoreBreakerProbes,
	})
}

func newMux(s *server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/compile", s.guard(s.compiles, &s.inFlightCompiles, s.handleCompile))
	mux.HandleFunc("/v1/query", s.guard(s.queries, &s.inFlightQueries, s.handleQuery))
	mux.HandleFunc("/healthz", s.guard(nil, nil, s.handleHealthz))
	mux.HandleFunc("/varz", s.guard(nil, nil, s.handleVarz))
	return mux
}

// Command regenserve is a small HTTP/JSON service over the compile/query
// split: clients upload CTMC models once, the service compiles them into
// immutable shared artifacts (LRU-cached by content hash), and many
// concurrent clients then evaluate batches of {method, measure, rewards,
// times} queries against one compiled model — the serving pattern the
// paper's one-time-construction/many-cheap-queries structure was built for.
//
// API (all request/response bodies are JSON):
//
//	POST /v1/compile   {"model": {...}, "regen_state": 0, "epsilon": 1e-12}
//	                   ("compact": true selects float32 series retention —
//	                   half the compile-phase memory, needs a loose epsilon;
//	                   "prebuild_horizon": t eagerly extends the chains to
//	                   certify horizon t; "horizon_buckets": k rounds each
//	                   query horizon UP to a geometric grid with k points
//	                   per decade so near-miss horizons share one series —
//	                   answers are evaluated at the requested times but the
//	                   series is certified at the bucketed horizon, so they
//	                   can differ from the unbucketed ones within epsilon;
//	                   the option is part of the model id;
//	                   "inverter": "durbin" (default) or "euler" selects the
//	                   Laplace inversion backend for RRL queries — part of
//	                   the model id; euler rejects epsilons tighter than its
//	                   certified roundoff floor with 400;
//	                   "timeout_ms" caps the request)
//	                   → {"model_id": "...", "states": n, "transitions": nnz,
//	                     "retained_bytes": b}
//	POST /v1/query     {"model_id": "...", "queries": [{"method": "RRL",
//	                    "measure": "TRR", "rewards": [...], "times": [...]}]}
//	                   or with an inline "model" instead of "model_id"
//	                   → {"results": [{"results": [...], "error": ""}]}
//	                   a query with "bounds": true returns certified
//	                   enclosures (rows carry "lower"/"upper"; RR/RRL only,
//	                   served by the fused value+bounds inversion)
//	                   a query with "inverter": "euler" (or "durbin")
//	                   overrides the compile's inversion backend for that
//	                   row (RRL only; other methods reject it per-row);
//	                   queries on different backends are never grouped into
//	                   one lane pass, and every RRL result row discloses
//	                   the backend that served it as "inverter"
//	                   batches are planned before execution: byte-identical
//	                   queries are solved once, and same-horizon RR/RRL
//	                   queries share one multi-lane series construction —
//	                   send one array of query objects per request to get
//	                   grouped pricing; responses are bitwise-identical to
//	                   one-query-per-request traffic
//	                   "timeout_ms" caps this request's processing time;
//	                   rows that miss the deadline carry a per-row "error"
//	                   while finished rows keep their results. "degrade":
//	                   "allow" opts into certified degraded answers: a
//	                   deadline-missed row is retried once at the server's
//	                   -degrade-epsilon under a short grace budget and comes
//	                   back flagged {"degraded": true, "epsilon": 1e-6} —
//	                   still a certified bound, just a wider one. On a model
//	                   compiled with "horizon_buckets" (settable inline here
//	                   too), every row served at a rounded-up horizon carries
//	                   "bucketed_horizon" disclosing the grid point its
//	                   series was certified at
//	GET  /healthz      → {"ok": true, "draining": false, "cached_models": k,
//	                     "cache_bytes": b, "uptime_s": s} (503 while
//	                     draining — load balancers stop routing here)
//	GET  /varz         → flat JSON counters: requests, in-flight and queued
//	                     compiles/queries, shed, timeouts, degraded, panics,
//	                     cache entries/bytes, uptime, and the engine's
//	                     work-sharing counters — series_cache_hits/misses,
//	                     series_extensions, series_extension_steps_saved
//	                     (how often a query reused or grew an existing
//	                     series instead of rebuilding it) — and the snapshot
//	                     counters snapshot_loads, snapshot_load_failures,
//	                     snapshot_writes, snapshot_write_failures,
//	                     snapshot_bytes_written, snapshot_quarantines, plus
//	                     the store robustness counters store_retries,
//	                     store_hedged_won, store_hedged_lost,
//	                     store_breaker_opens, store_breaker_probes
//
// The model encoding is {"states": n, "transitions": [[from, to, rate],
// ...], "initial": [[state, probability], ...]}. A model_id is the content
// key of the compile (model fingerprint + options), so re-uploading the
// same model is free and ids are stable across restarts. The wire model is
// fully validated at the trust boundary — non-finite or negative rates,
// fractional or out-of-range indices, and non-normalized initial
// distributions answer 400 with the offending field named; they never reach
// the engine.
//
// # Serving lifecycle
//
// Every request passes a hardening pipeline before any engine work:
//
//  1. Drain check — after SIGTERM/SIGINT the server stops admitting
//     (503 + Retry-After) while in-flight requests finish, then exits.
//  2. Admission — compiles and queries hold separate concurrency slots
//     (-compiles/-queries) with a bounded wait queue (-queue, -queue-wait);
//     overflow is shed immediately with 429 + Retry-After instead of
//     stacking goroutines behind a saturated pool.
//  3. Body cap — requests larger than -max-body answer 413; models beyond
//     -max-states/-max-transitions answer 400.
//  4. Deadline — each request runs under a context deadline (client
//     "timeout_ms", else -timeout, both capped by -max-timeout) anchored on
//     the connection, so a disconnected client cancels its own work. The
//     engine checkpoints between stepping chunks and inversion blocks, so
//     cancellation lands within a couple of chunk latencies and never
//     poisons the shared cache: an abandoned single-flight compile keeps
//     running for its other waiters, and a retry resumes the append-only
//     series exactly where it stopped, bitwise-identical.
//  5. Panic barrier — a panicking handler answers 500 and the server keeps
//     serving; engine worker panics are already converted to errors before
//     they reach the handler.
//
// # Snapshots and warm restarts
//
// With -snapshot-dir (local directory) or -snapshot-url (S3-compatible
// object store) set, compiled artifacts survive the process: every compile
// is written back in the background as a versioned, checksummed snapshot
// (model + options + the retained regeneration chains; see
// internal/snapshot), written atomically so a crash mid-write can never
// leave a torn blob under a live name. At boot the server warm-starts the
// cache from the store (several blobs in flight at once against a network
// store), and at drain it re-snapshots every cached model so the chains
// deepened by the traffic just served are captured. A restart therefore
// resumes at its former depth and answers bitwise-identically to the
// process that died — without re-uploading, recompiling, or re-stepping.
//
// Nothing in the store is trusted: a snapshot must pass per-section CRCs, a
// content-key recomputation over the rebuilt model, and chain
// cross-validation before it is served; anything that fails — truncated,
// bit-flipped, version-mismatched, or misfiled — is logged, moved aside to
// *.corrupt for inspection (a rename locally, copy+delete in the object
// store), and silently replaced by a recompile. A bad snapshot can cost a
// recompile, never a wrong answer and never a refusal to boot. Snapshots
// from a different format version are rejected the same way, so rolling the
// binary forward (or back) across a format change is always safe.
//
// # Object-store robustness
//
// The -snapshot-url backend (internal/store/objstore) speaks plain S3 HTTP
// — AWS S3, MinIO, Ceph RGW — with SigV4 credentials taken from
// REGENRAND_S3_ACCESS_KEY / REGENRAND_S3_SECRET_KEY (unsigned requests when
// unset, for anonymous or test endpoints). Store I/O runs behind a
// composed robustness stack:
//
//   - Hedged reads: a read that has not answered within the hedge delay
//     launches a second request and takes whichever finishes first, so one
//     slow replica costs one slow blob, not a slow boot.
//   - Deadline-aware retries: transient failures (5xx, connection resets,
//     truncated bodies) retry with full-jitter exponential backoff, capped
//     per sleep and in total; permanent failures (404, other 4xx,
//     validation rejects) short-circuit immediately.
//   - Circuit breaker: after enough consecutive transient failures the
//     breaker opens and store calls fail fast — cache misses go straight to
//     recompile instead of adding store timeouts to every cold query. After
//     a cooldown one probe is admitted; success closes the circuit. Every
//     transition is logged ("store breaker: open …", "… half-open probe",
//     "… closed"), and the open/probe counts are on /varz.
//
// The degrade-to-recompile contract: a flaky or dead object store NEVER
// fails a request and never changes an answer — it only costs latency
// (recompiles instead of warm loads). Snapshot write-back uses conditional
// writes (If-None-Match: *), so many nodes sharing one bucket compile a
// given model once: the first write-back stores the blob, every other node
// observes it already exists and skips the upload.
//
// # Flags
//
//	-addr             listen address (default :8347)
//	-cache            compiled-model LRU entry capacity (default 64)
//	-cache-bytes      retained-bytes budget across cached models; LRU
//	                  eviction above it, 0 = entries-only (default 0)
//	-compiles         max concurrent compile requests (default 4)
//	-queries          max concurrent query requests (default 32)
//	-queue            admission queue depth per class before shedding
//	                  (default 64)
//	-queue-wait       max time a request waits for an admission slot
//	                  (default 2s)
//	-timeout          default per-request deadline when the client sends no
//	                  timeout_ms (default 30s)
//	-max-timeout      cap on client-requested timeout_ms (default 2m)
//	-max-body         request body byte cap (default 8 MiB)
//	-max-states       wire-model state cap (default 1e6)
//	-max-transitions  wire-model transition cap (default 1e7)
//	-degrade-epsilon  epsilon served to "degrade":"allow" rows that missed
//	                  their deadline (default 1e-6)
//	-degrade-grace    extra budget for the one degraded retry (default 2s)
//	-drain            shutdown grace for in-flight requests after
//	                  SIGTERM/SIGINT (default 30s)
//	-snapshot-dir     directory for durable compiled-model snapshots; warm
//	                  start at boot, background write-back per compile,
//	                  flush at drain (empty = disabled)
//	-snapshot-url     S3-compatible object store for snapshots,
//	                  http[s]://host[:port]/bucket[/prefix]; same lifecycle
//	                  as -snapshot-dir behind the hedge/retry/breaker stack;
//	                  mutually exclusive with -snapshot-dir (empty =
//	                  disabled)
//	-selfcheck        start on an ephemeral port, drive a sample compile +
//	                  concurrent batch query over HTTP, exit 0/1 (CI smoke)
//	-chaos            with -selfcheck: additionally inject faults (stepping
//	                  delays, inversion errors, compile panics, snapshot
//	                  store/decode failures, object-store network faults)
//	                  at the engine's fault points and assert the server
//	                  stays live, bad rows fail cleanly, kill-and-restart
//	                  recovery is bitwise-identical, corruption is
//	                  quarantined, not served, and the circuit breaker
//	                  opens against a dead store and recovers
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"regenrand"
	"regenrand/internal/store"
	"regenrand/internal/store/objstore"
)

func main() {
	addr := flag.String("addr", ":8347", "listen address")
	cacheSize := flag.Int("cache", 64, "compiled-model LRU capacity (entries)")
	cacheBytes := flag.Int64("cache-bytes", 0, "retained-bytes budget across cached models (0 = entries-only)")
	compiles := flag.Int("compiles", 4, "max concurrent compile requests")
	queries := flag.Int("queries", 32, "max concurrent query requests")
	queueDepth := flag.Int("queue", 64, "admission queue depth per request class before shedding")
	queueWait := flag.Duration("queue-wait", 2*time.Second, "max wait for an admission slot")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request deadline")
	maxTimeout := flag.Duration("max-timeout", 2*time.Minute, "cap on client-requested timeout_ms")
	maxBody := flag.Int64("max-body", 8<<20, "request body byte cap")
	maxStates := flag.Int("max-states", 1_000_000, "wire-model state cap")
	maxTransitions := flag.Int("max-transitions", 10_000_000, "wire-model transition cap")
	degradeEpsilon := flag.Float64("degrade-epsilon", 1e-6, "epsilon of certified degraded answers")
	degradeGrace := flag.Duration("degrade-grace", 2*time.Second, "extra budget for one degraded retry")
	drain := flag.Duration("drain", 30*time.Second, "shutdown grace for in-flight requests")
	snapshotDir := flag.String("snapshot-dir", "", "directory for durable compiled-model snapshots (empty = disabled)")
	snapshotURL := flag.String("snapshot-url", "", "S3-compatible object store for snapshots, http[s]://host[:port]/bucket[/prefix] (empty = disabled; credentials via REGENRAND_S3_ACCESS_KEY/SECRET_KEY)")
	selfcheck := flag.Bool("selfcheck", false, "start on an ephemeral port, run a sample compile + concurrent batch query, exit")
	chaos := flag.Bool("chaos", false, "with -selfcheck: inject engine faults and assert recovery (fault-injection smoke)")
	flag.Parse()

	srv := newServer(serverConfig{
		CacheEntries: *cacheSize,
		CacheBytes:   *cacheBytes,
		Compiles:     *compiles,
		Queries:      *queries,
		QueueDepth:   *queueDepth,
		QueueWait:    *queueWait,
		Limits: serverLimits{
			DefaultTimeout: *timeout,
			MaxTimeout:     *maxTimeout,
			MaxBody:        *maxBody,
			MaxStates:      *maxStates,
			MaxTransitions: *maxTransitions,
			DegradeEpsilon: *degradeEpsilon,
			DegradeGrace:   *degradeGrace,
		},
	})
	mux := newMux(srv)

	if *selfcheck {
		if err := runSelfcheck(srv, mux, *chaos); err != nil {
			fmt.Fprintf(os.Stderr, "regenserve selfcheck: FAIL: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("regenserve selfcheck: OK")
		return
	}

	if *snapshotDir != "" && *snapshotURL != "" {
		log.Fatalf("regenserve: -snapshot-dir and -snapshot-url are mutually exclusive")
	}
	if *snapshotDir != "" {
		if err := attachSnapshots(srv, *snapshotDir); err != nil {
			log.Fatalf("regenserve: snapshot store: %v", err)
		}
	}
	if *snapshotURL != "" {
		if err := attachSnapshotURL(srv, *snapshotURL); err != nil {
			log.Fatalf("regenserve: snapshot object store: %v", err)
		}
	}

	hs := &http.Server{Addr: *addr, Handler: mux}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("regenserve: listening on %s (cache %d entries / %d bytes, %d compile + %d query slots)",
		*addr, *cacheSize, *cacheBytes, *compiles, *queries)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-sigc:
		// Stop admitting (healthz flips to 503 so balancers route away),
		// then drain in-flight requests for up to -drain before exiting.
		srv.draining.Store(true)
		log.Printf("regenserve: %v; draining for up to %v", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("regenserve: drain incomplete: %v", err)
			os.Exit(1)
		}
		if *snapshotDir != "" || *snapshotURL != "" {
			// Flush captures the chains as deepened by the traffic served
			// since compile, so the next boot warm-starts at full depth.
			written, failed := srv.cache.FlushSnapshots()
			log.Printf("regenserve: snapshot flush: %d written, %d failed", written, failed)
		}
		log.Printf("regenserve: drained, exiting")
	}
}

// attachSnapshots connects a local-directory snapshot store (with retrying
// I/O) to the compile cache and warm-starts the cache from it: every stored
// snapshot that passes decode + checksum + content-key verification is
// loaded; corrupt ones are quarantined, logged, and recompiled on demand.
func attachSnapshots(srv *server, dir string) error {
	st, err := store.NewDir(dir)
	if err != nil {
		return err
	}
	srv.cache.SetSnapshotStore(store.WithRetry(st, 3, 25*time.Millisecond), log.Printf)
	return warmStart(srv, dir)
}

// attachSnapshotURL connects an S3-compatible object store behind the full
// robustness stack — hedged reads inside deadline-aware full-jitter retries
// inside a circuit breaker — and warm-starts from it with bounded
// concurrency. Credentials come from REGENRAND_S3_ACCESS_KEY /
// REGENRAND_S3_SECRET_KEY (unsigned requests when unset). A dead or flaky
// store never takes the server down: reads degrade to recompiles, the
// breaker's open/closed transitions land in the log, and the breaker probes
// the store back into service when it recovers.
func attachSnapshotURL(srv *server, rawURL string) error {
	st, err := newObjstoreStack(rawURL)
	if err != nil {
		return err
	}
	srv.cache.SetSnapshotStore(st, log.Printf)
	return warmStart(srv, rawURL)
}

// newObjstoreStack builds the production wrapper composition over an
// object-store URL: breaker(retry(hedge(client))). Hedge innermost so each
// retry attempt gets its own tail-latency hedge; breaker outermost so one
// logical operation counts as one verdict after its retries exhaust.
func newObjstoreStack(rawURL string) (store.Store, error) {
	cfg, err := objstore.ParseURL(rawURL)
	if err != nil {
		return nil, err
	}
	cfg.AccessKey = os.Getenv("REGENRAND_S3_ACCESS_KEY")
	cfg.SecretKey = os.Getenv("REGENRAND_S3_SECRET_KEY")
	client, err := objstore.New(cfg)
	if err != nil {
		return nil, err
	}
	return store.WithBreaker(
		store.WithRetryPolicy(
			store.WithHedge(client, 75*time.Millisecond),
			store.RetryPolicy{Attempts: 3, Backoff: 50 * time.Millisecond, MaxElapsed: 5 * time.Second},
		),
		store.BreakerOptions{Failures: 5, Cooldown: 5 * time.Second, Logf: log.Printf},
	), nil
}

// warmStart loads every verifiable snapshot from the attached store. A store
// that cannot even list (down at boot) is logged, not fatal: the server
// boots cold and the breaker re-probes as traffic arrives.
func warmStart(srv *server, from string) error {
	loaded, failed, err := srv.cache.WarmStart(context.Background())
	if err != nil {
		log.Printf("regenserve: warm start from %s unavailable (booting cold): %v", from, err)
		return nil
	}
	log.Printf("regenserve: warm start from %s: %d snapshot(s) loaded, %d failed", from, loaded, failed)
	return nil
}

// newServer wires the cache, admission classes, and limits together.
type serverConfig struct {
	CacheEntries int
	CacheBytes   int64
	Compiles     int
	Queries      int
	QueueDepth   int
	QueueWait    time.Duration
	Limits       serverLimits
}

func newServer(cfg serverConfig) *server {
	// A zero byte budget disables byte eviction but still installs the
	// size function, so /varz reports retained bytes either way.
	return &server{
		cache:    regenrand.NewCompileCacheBytes(cfg.CacheEntries, cfg.CacheBytes),
		limits:   cfg.Limits,
		compiles: newAdmission(cfg.Compiles, cfg.QueueDepth, cfg.QueueWait),
		queries:  newAdmission(cfg.Queries, cfg.QueueDepth, cfg.QueueWait),
		start:    time.Now(),
	}
}

// Command regenserve is a small HTTP/JSON service over the compile/query
// split: clients upload CTMC models once, the service compiles them into
// immutable shared artifacts (LRU-cached by content hash), and many
// concurrent clients then evaluate batches of {method, measure, rewards,
// times} queries against one compiled model — the serving pattern the
// paper's one-time-construction/many-cheap-queries structure was built for.
//
// API (all request/response bodies are JSON):
//
//	POST /v1/compile   {"model": {...}, "regen_state": 0, "epsilon": 1e-12}
//	                   ("compact": true selects float32 series retention —
//	                   half the compile-phase memory, needs a loose epsilon)
//	                   → {"model_id": "...", "states": n, "transitions": nnz}
//	POST /v1/query     {"model_id": "...", "queries": [{"method": "RRL",
//	                    "measure": "TRR", "rewards": [...], "times": [...]}]}
//	                   or with an inline "model" instead of "model_id"
//	                   → {"results": [{"results": [...], "error": ""}]}
//	                   a query with "bounds": true returns certified
//	                   enclosures (rows carry "lower"/"upper"; RR/RRL only,
//	                   served by the fused value+bounds inversion)
//	                   batches are planned before execution: byte-identical
//	                   queries are solved once, and same-horizon RR/RRL
//	                   queries share one multi-lane series construction —
//	                   send one array of query objects per request to get
//	                   grouped pricing; responses are bitwise-identical to
//	                   one-query-per-request traffic
//	GET  /healthz      → {"ok": true, "cached_models": k}
//
// The model encoding is {"states": n, "transitions": [[from, to, rate],
// ...], "initial": [[state, probability], ...]}. A model_id is the content
// key of the compile (model fingerprint + options), so re-uploading the
// same model is free and ids are stable across restarts.
//
// Run with -selfcheck to start on an ephemeral port, drive a sample
// compile + concurrent batch query against the live server over HTTP, and
// exit 0/1 — the CI smoke mode.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"regenrand"
)

// modelJSON is the wire encoding of a CTMC.
type modelJSON struct {
	States      int         `json:"states"`
	Transitions [][]float64 `json:"transitions"`
	Initial     [][]float64 `json:"initial"`
}

// compileRequest configures one compile.
type compileRequest struct {
	Model *modelJSON `json:"model"`
	// RegenState is the regenerative state (-1 = none). Defaults to 0, the
	// paper's fault-free initial state.
	RegenState *int `json:"regen_state,omitempty"`
	// Epsilon is the error bound (default 1e-12, the paper's choice).
	Epsilon float64 `json:"epsilon,omitempty"`
	// DisableRetention trades rebinding speed for memory; see
	// regenrand.CompileOptions.
	DisableRetention bool `json:"disable_retention,omitempty"`
	// Compact retains the stepped series as float32, halving compile-phase
	// memory at a quantified accuracy cost charged against the error
	// budget; needs a loose epsilon (~1e-6 or above). See
	// regenrand.CompileOptions.CompactRetention.
	Compact bool `json:"compact,omitempty"`
}

type compileResponse struct {
	ModelID     string `json:"model_id"`
	States      int    `json:"states"`
	Transitions int    `json:"transitions"`
}

type queryJSON struct {
	Method     string    `json:"method,omitempty"`
	Measure    string    `json:"measure,omitempty"`
	Rewards    []float64 `json:"rewards"`
	Times      []float64 `json:"times"`
	BlockSteps int       `json:"block_steps,omitempty"`
	// Bounds requests certified two-sided enclosures instead of point
	// values (RR/RRL only). RRL enclosures are served by the fused
	// value+truncation-mass inversion, so they cost barely more than the
	// values alone; rows then carry "lower"/"upper" alongside "value" (the
	// midpoint).
	Bounds bool `json:"bounds,omitempty"`
}

type queryRequest struct {
	ModelID string     `json:"model_id,omitempty"`
	Model   *modelJSON `json:"model,omitempty"`
	// Compile options for inline models; ignored with model_id.
	RegenState       *int        `json:"regen_state,omitempty"`
	Epsilon          float64     `json:"epsilon,omitempty"`
	DisableRetention bool        `json:"disable_retention,omitempty"`
	Compact          bool        `json:"compact,omitempty"`
	Queries          []queryJSON `json:"queries"`
}

type resultJSON struct {
	T         float64  `json:"t"`
	Value     float64  `json:"value"`
	Lower     *float64 `json:"lower,omitempty"`
	Upper     *float64 `json:"upper,omitempty"`
	Steps     int      `json:"steps,omitempty"`
	Abscissae int      `json:"abscissae,omitempty"`
}

type queryResultJSON struct {
	Results []resultJSON `json:"results,omitempty"`
	Error   string       `json:"error,omitempty"`
}

type queryResponse struct {
	ModelID string            `json:"model_id"`
	Results []queryResultJSON `json:"results"`
}

// server shares one compile cache across every request.
type server struct {
	cache *regenrand.CompileCache
}

func (m *modelJSON) build() (*regenrand.CTMC, error) {
	if m == nil {
		return nil, fmt.Errorf("missing model")
	}
	b := regenrand.NewBuilder(m.States)
	for i, tr := range m.Transitions {
		if len(tr) != 3 {
			return nil, fmt.Errorf("transition %d: want [from, to, rate], got %d fields", i, len(tr))
		}
		from, to := int(tr[0]), int(tr[1])
		if float64(from) != tr[0] || float64(to) != tr[1] {
			return nil, fmt.Errorf("transition %d: non-integer state index", i)
		}
		if err := b.AddTransition(from, to, tr[2]); err != nil {
			return nil, err
		}
	}
	for i, in := range m.Initial {
		if len(in) != 2 {
			return nil, fmt.Errorf("initial %d: want [state, probability]", i)
		}
		if err := b.SetInitial(int(in[0]), in[1]); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// compileOptions translates the wire options.
func compileOptions(regenState *int, epsilon float64, disableRetention, compact bool) regenrand.CompileOptions {
	opts := regenrand.DefaultOptions()
	if epsilon != 0 {
		opts.Epsilon = epsilon
	}
	rs := 0
	if regenState != nil {
		rs = *regenState
	}
	if rs < 0 {
		rs = regenrand.NoRegen
	}
	return regenrand.CompileOptions{Options: opts, RegenState: rs, DisableRetention: disableRetention, CompactRetention: compact}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *server) handleCompile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req compileRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	model, err := req.Model.build()
	if err != nil {
		writeError(w, http.StatusBadRequest, "building model: %v", err)
		return
	}
	cm, err := s.cache.Compile(model, compileOptions(req.RegenState, req.Epsilon, req.DisableRetention, req.Compact))
	if err != nil {
		writeError(w, http.StatusBadRequest, "compiling: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, compileResponse{
		ModelID:     cm.Key(),
		States:      cm.Model().N(),
		Transitions: cm.Model().NumTransitions(),
	})
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	var cm *regenrand.CompiledModel
	switch {
	case req.ModelID != "":
		var ok bool
		cm, ok = s.cache.Get(req.ModelID)
		if !ok {
			writeError(w, http.StatusNotFound, "model %s not cached (evicted or never compiled); re-POST /v1/compile", req.ModelID)
			return
		}
	case req.Model != nil:
		model, err := req.Model.build()
		if err != nil {
			writeError(w, http.StatusBadRequest, "building model: %v", err)
			return
		}
		cm, err = s.cache.Compile(model, compileOptions(req.RegenState, req.Epsilon, req.DisableRetention, req.Compact))
		if err != nil {
			writeError(w, http.StatusBadRequest, "compiling: %v", err)
			return
		}
	default:
		writeError(w, http.StatusBadRequest, "need model_id or model")
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "no queries")
		return
	}
	// Value and bounds requests run as two overlapped batches (each also
	// fans out internally over the worker pool, which degrades gracefully
	// when saturated); responses land back in request-indexed slots.
	var valIdx, bndIdx []int
	for i, q := range req.Queries {
		if q.Bounds {
			bndIdx = append(bndIdx, i)
		} else {
			valIdx = append(valIdx, i)
		}
	}
	toQuery := func(q queryJSON) regenrand.Query {
		return regenrand.Query{
			Method:     regenrand.Method(q.Method),
			Measure:    regenrand.MeasureKind(q.Measure),
			Rewards:    q.Rewards,
			Times:      q.Times,
			BlockSteps: q.BlockSteps,
		}
	}
	resp := queryResponse{ModelID: cm.Key(), Results: make([]queryResultJSON, len(req.Queries))}
	var wg sync.WaitGroup
	if len(valIdx) > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			qs := make([]regenrand.Query, len(valIdx))
			for i, idx := range valIdx {
				qs[i] = toQuery(req.Queries[idx])
			}
			for i, qr := range cm.QueryBatch(qs) {
				idx := valIdx[i]
				if qr.Err != nil {
					resp.Results[idx].Error = qr.Err.Error()
					continue
				}
				rs := make([]resultJSON, len(qr.Results))
				for j, res := range qr.Results {
					rs[j] = resultJSON{T: res.T, Value: res.Value, Steps: res.Steps, Abscissae: res.Abscissae}
				}
				resp.Results[idx].Results = rs
			}
		}()
	}
	if len(bndIdx) > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			qs := make([]regenrand.Query, len(bndIdx))
			for i, idx := range bndIdx {
				qs[i] = toQuery(req.Queries[idx])
			}
			for i, br := range cm.QueryBoundsBatch(qs) {
				idx := bndIdx[i]
				if br.Err != nil {
					resp.Results[idx].Error = br.Err.Error()
					continue
				}
				rs := make([]resultJSON, len(br.Bounds))
				for j, b := range br.Bounds {
					lo, hi := b.Lower, b.Upper
					rs[j] = resultJSON{T: b.T, Value: (lo + hi) / 2, Lower: &lo, Upper: &hi}
				}
				resp.Results[idx].Results = rs
			}
		}()
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "cached_models": s.cache.Len()})
}

func newMux(s *server) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/compile", s.handleCompile)
	mux.HandleFunc("/v1/query", s.handleQuery)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

func main() {
	addr := flag.String("addr", ":8347", "listen address")
	cacheSize := flag.Int("cache", 64, "compiled-model LRU capacity")
	selfcheck := flag.Bool("selfcheck", false, "start on an ephemeral port, run a sample compile + concurrent batch query, exit")
	flag.Parse()

	srv := &server{cache: regenrand.NewCompileCache(*cacheSize)}
	mux := newMux(srv)

	if *selfcheck {
		if err := runSelfcheck(mux); err != nil {
			fmt.Fprintf(os.Stderr, "regenserve selfcheck: FAIL: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("regenserve selfcheck: OK")
		return
	}

	log.Printf("regenserve: listening on %s (cache capacity %d)", *addr, *cacheSize)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

// sameRow compares two result rows by value (the bounds edges are pointers,
// so struct equality would compare identities).
func sameRow(a, b resultJSON) bool {
	if a.T != b.T || a.Value != b.Value || a.Steps != b.Steps || a.Abscissae != b.Abscissae {
		return false
	}
	if (a.Lower == nil) != (b.Lower == nil) || (a.Upper == nil) != (b.Upper == nil) {
		return false
	}
	if a.Lower != nil && (*a.Lower != *b.Lower || *a.Upper != *b.Upper) {
		return false
	}
	return true
}

// runSelfcheck exercises the live HTTP surface: compile a small RAID
// availability model, then hit it with concurrent batch queries across
// methods and check the answers agree with each other within the error
// bound.
func runSelfcheck(mux *http.ServeMux) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: mux}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	// A 2-parity-group RAID availability model, built via the public API
	// and re-encoded to the wire format.
	rm, err := regenrand.BuildRAID(regenrand.DefaultRAIDParams(2), false)
	if err != nil {
		return err
	}
	model := &modelJSON{States: rm.Chain.N()}
	for _, tr := range rm.Chain.Transitions() {
		model.Transitions = append(model.Transitions, []float64{float64(tr.Row), float64(tr.Col), tr.Val})
	}
	init := rm.Chain.Initial()
	for i, p := range init {
		if p > 0 {
			model.Initial = append(model.Initial, []float64{float64(i), p})
		}
	}

	post := func(path string, req, resp any) error {
		body, err := json.Marshal(req)
		if err != nil {
			return err
		}
		r, err := http.Post(base+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer r.Body.Close()
		if r.StatusCode != http.StatusOK {
			var e map[string]string
			_ = json.NewDecoder(r.Body).Decode(&e)
			return fmt.Errorf("%s: HTTP %d: %s", path, r.StatusCode, e["error"])
		}
		return json.NewDecoder(r.Body).Decode(resp)
	}

	var comp compileResponse
	if err := post("/v1/compile", compileRequest{Model: model}, &comp); err != nil {
		return err
	}
	if comp.States != rm.Chain.N() {
		return fmt.Errorf("compile reported %d states, want %d", comp.States, rm.Chain.N())
	}

	rewards := rm.UnavailabilityRewards()
	times := []float64{1, 10, 100}
	queries := []queryJSON{
		{Method: "RRL", Measure: "TRR", Rewards: rewards, Times: times},
		{Method: "SR", Measure: "TRR", Rewards: rewards, Times: times},
		{Method: "RR", Measure: "MRR", Rewards: rewards, Times: times},
		{Method: "RRL", Measure: "MRR", Rewards: rewards, Times: times},
		{Method: "RRL", Measure: "TRR", Rewards: rewards, Times: times, Bounds: true},
	}

	// Many concurrent clients sharing the one compiled model.
	const clients = 8
	responses := make([]queryResponse, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			errs[c] = post("/v1/query", queryRequest{ModelID: comp.ModelID, Queries: queries}, &responses[c])
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			return fmt.Errorf("client %d: %w", c, err)
		}
	}
	for c, resp := range responses {
		if len(resp.Results) != len(queries) {
			return fmt.Errorf("client %d: %d results, want %d", c, len(resp.Results), len(queries))
		}
		for i, qr := range resp.Results {
			if qr.Error != "" {
				return fmt.Errorf("client %d query %d: %s", c, i, qr.Error)
			}
			if len(qr.Results) != len(times) {
				return fmt.Errorf("client %d query %d: %d values", c, i, len(qr.Results))
			}
		}
		// RRL and SR must agree on TRR within the combined error bound.
		for j := range times {
			a, b := resp.Results[0].Results[j].Value, resp.Results[1].Results[j].Value
			if math.Abs(a-b) > 1e-9 {
				return fmt.Errorf("client %d: RRL %v vs SR %v at t=%v", c, a, b, times[j])
			}
		}
		// The certified enclosures must carry both edges and contain the SR
		// values.
		for j := range times {
			row := resp.Results[4].Results[j]
			if row.Lower == nil || row.Upper == nil {
				return fmt.Errorf("client %d: bounds row %d missing lower/upper", c, j)
			}
			if sr := resp.Results[1].Results[j].Value; sr < *row.Lower-1e-9 || sr > *row.Upper+1e-9 {
				return fmt.Errorf("client %d: SR %v outside bounds [%v, %v] at t=%v",
					c, sr, *row.Lower, *row.Upper, times[j])
			}
		}
		// All clients must see bitwise-identical answers.
		for i := range resp.Results {
			for j := range resp.Results[i].Results {
				if !sameRow(resp.Results[i].Results[j], responses[0].Results[i].Results[j]) {
					return fmt.Errorf("client %d disagrees with client 0 on query %d", c, i)
				}
			}
		}
	}
	fmt.Printf("regenserve selfcheck: %d clients × %d queries × %d times on a %d-state model in %v\n",
		clients, len(queries), len(times), comp.States, time.Since(start).Round(time.Millisecond))

	// Grouped-batch planning: a multi-measure same-horizon batch (plus a
	// byte-identical duplicate) must return rows bitwise-identical to
	// one-query-per-request traffic — the planner changes throughput, never
	// results.
	var grouped []queryJSON
	for mi := 0; mi < 6; mi++ {
		salt := mi
		rw := regenrand.RewardsFrom(rm.Chain.N(), func(i int) float64 {
			return float64(((i+salt)*2654435761)%(1<<20)) / float64(1<<20-1)
		})
		grouped = append(grouped, queryJSON{Method: "RRL", Measure: "TRR", Rewards: rw, Times: times})
	}
	grouped = append(grouped, grouped[0])
	var groupedResp queryResponse
	if err := post("/v1/query", queryRequest{ModelID: comp.ModelID, Queries: grouped}, &groupedResp); err != nil {
		return err
	}
	if len(groupedResp.Results) != len(grouped) {
		return fmt.Errorf("grouped batch: %d results, want %d", len(groupedResp.Results), len(grouped))
	}
	for i, q := range grouped {
		if groupedResp.Results[i].Error != "" {
			return fmt.Errorf("grouped batch query %d: %s", i, groupedResp.Results[i].Error)
		}
		var single queryResponse
		if err := post("/v1/query", queryRequest{ModelID: comp.ModelID, Queries: []queryJSON{q}}, &single); err != nil {
			return err
		}
		if single.Results[0].Error != "" {
			return fmt.Errorf("serial query %d: %s", i, single.Results[0].Error)
		}
		for j := range single.Results[0].Results {
			if !sameRow(groupedResp.Results[i].Results[j], single.Results[0].Results[j]) {
				return fmt.Errorf("grouped batch query %d row %d differs from the serial response", i, j)
			}
		}
	}
	fmt.Printf("regenserve selfcheck: grouped %d-query batch == one-query-per-request traffic\n", len(grouped))

	// Compact retention end to end: compile with "compact", query, and
	// check the answers stay within the (loosened) error budget of SR.
	var compactComp compileResponse
	if err := post("/v1/compile", compileRequest{Model: model, Epsilon: 1e-6, Compact: true}, &compactComp); err != nil {
		return err
	}
	if compactComp.ModelID == comp.ModelID {
		return fmt.Errorf("compact compile shares the full-retention model id")
	}
	var compactResp queryResponse
	if err := post("/v1/query", queryRequest{
		ModelID: compactComp.ModelID,
		Queries: []queryJSON{{Method: "RRL", Measure: "TRR", Rewards: rewards, Times: times}},
	}, &compactResp); err != nil {
		return err
	}
	if compactResp.Results[0].Error != "" {
		return fmt.Errorf("compact query: %s", compactResp.Results[0].Error)
	}
	for j := range times {
		a := compactResp.Results[0].Results[j].Value
		b := responses[0].Results[1].Results[j].Value // SR reference
		if math.Abs(a-b) > 2e-6 {
			return fmt.Errorf("compact RRL %v vs SR %v at t=%v", a, b, times[j])
		}
	}

	// Unknown id must 404.
	r, err := http.Post(base+"/v1/query", "application/json",
		bytes.NewReader([]byte(`{"model_id":"nope","queries":[{"times":[1],"rewards":[]}]}`)))
	if err != nil {
		return err
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		return fmt.Errorf("unknown model id: HTTP %d, want 404", r.StatusCode)
	}
	return nil
}

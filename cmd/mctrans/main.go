// Command mctrans solves transient dependability/performability measures of
// an arbitrary CTMC stored in the mcio text format, with any of the six
// implemented methods. It can also export the built-in RAID benchmark model
// so external tools (or curious users) can inspect it.
//
// Examples:
//
//	mctrans -model system.ctmc -method rrl -t 1,10,100,1000
//	mctrans -model system.ctmc -method rrl -measure mrr -t 100
//	mctrans -model system.ctmc -method rrl -bounds -t 100
//	mctrans -export-raid 20 > raid20.ctmc            (UA model + rewards)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"regenrand"
	"regenrand/internal/mcio"
)

func main() {
	var (
		modelPath  = flag.String("model", "", "path to a model in mcio format")
		method     = flag.String("method", "rrl", "sr|rsd|rr|rrl|au|ms")
		measure    = flag.String("measure", "trr", "trr|mrr")
		tlist      = flag.String("t", "1,10,100", "comma-separated times")
		eps        = flag.Float64("eps", 1e-12, "error bound ε")
		regenState = flag.Int("regen", 0, "regenerative state for rr/rrl")
		bounds     = flag.Bool("bounds", false, "print certified bounds (rr/rrl)")
		exportRAID = flag.Int("export-raid", 0, "export the RAID UA model for G groups to stdout and exit")
		validate   = flag.Bool("validate", true, "run the model-class structural validation")
	)
	flag.Parse()

	if *exportRAID > 0 {
		m, err := regenrand.BuildRAID(regenrand.DefaultRAIDParams(*exportRAID), false)
		if err != nil {
			fail(err)
		}
		if err := mcio.Write(os.Stdout, m.Chain, m.UnavailabilityRewards()); err != nil {
			fail(err)
		}
		return
	}
	if *modelPath == "" {
		fail(fmt.Errorf("no -model given (and no -export-raid)"))
	}
	f, err := os.Open(*modelPath)
	if err != nil {
		fail(err)
	}
	model, rewards, err := mcio.Read(f)
	f.Close()
	if err != nil {
		fail(err)
	}
	if *validate {
		if err := regenrand.CheckModelClass(model); err != nil {
			fail(fmt.Errorf("model validation failed (pass -validate=false to skip): %w", err))
		}
	}
	ts, err := parseTimes(*tlist)
	if err != nil {
		fail(err)
	}

	opts := regenrand.Options{Epsilon: *eps, UniformizationFactor: 1}
	var solver regenrand.Solver
	switch *method {
	case "sr":
		solver, err = regenrand.NewSR(model, rewards, opts)
	case "rsd":
		solver, err = regenrand.NewRSD(model, rewards, opts)
	case "rr":
		solver, err = regenrand.NewRR(model, rewards, *regenState, opts)
	case "rrl":
		solver, err = regenrand.NewRRL(model, rewards, *regenState, opts)
	case "au":
		solver, err = regenrand.NewAU(model, rewards, opts)
	case "ms":
		solver, err = regenrand.NewMultistep(model, rewards, 0, opts)
	default:
		err = fmt.Errorf("unknown method %q", *method)
	}
	if err != nil {
		fail(err)
	}

	fmt.Printf("model: %d states, %d transitions, Λ=%g — method=%s measure=%s ε=%g\n\n",
		model.N(), model.NumTransitions(), model.MaxOutRate(), solver.Name(), *measure, *eps)

	start := time.Now()
	if *bounds {
		bs, ok := solver.(regenrand.BoundingSolver)
		if !ok {
			fail(fmt.Errorf("method %s does not provide bounds (use rr or rrl)", solver.Name()))
		}
		var res []regenrand.Bounds
		if *measure == "mrr" {
			res, err = bs.MRRBounds(ts)
		} else {
			res, err = bs.TRRBounds(ts)
		}
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-12s %-24s %-24s %-12s\n", "t", "lower", "upper", "width")
		for _, r := range res {
			fmt.Printf("%-12g %-24.15e %-24.15e %-12.3e\n", r.T, r.Lower, r.Upper, r.Upper-r.Lower)
		}
	} else {
		var res []regenrand.Result
		if *measure == "mrr" {
			res, err = solver.MRR(ts)
		} else {
			res, err = solver.TRR(ts)
		}
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-12s %-24s %-10s %-10s\n", "t", "value", "steps", "abscissae")
		for _, r := range res {
			fmt.Printf("%-12g %-24.15e %-10d %-10d\n", r.T, r.Value, r.Steps, r.Abscissae)
		}
	}
	fmt.Printf("\nwall time %v\n", time.Since(start))
}

func parseTimes(list string) ([]float64, error) {
	var ts []float64
	for _, tok := range strings.Split(list, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		v, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return nil, fmt.Errorf("bad time %q: %w", tok, err)
		}
		ts = append(ts, v)
	}
	if len(ts) == 0 {
		return nil, fmt.Errorf("no times given")
	}
	return ts, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "mctrans:", err)
	os.Exit(1)
}

package regenrand_test

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"regenrand"
	"regenrand/internal/faultpoint"
)

// The in-place extension contract: querying a short horizon first and a
// longer one second must produce answers bitwise-identical to a fresh
// compile queried at the long horizon directly — the extension reuses the
// already-stepped chain prefix and only pays the missing steps, it never
// recomputes or perturbs them. Covered on the paper's Fig 3/4 G=20 models
// and the 10⁴-state band model, for retaining and non-retaining compiles,
// at GOMAXPROCS 1 and 8. Run under -race in CI.
func TestExtensionThenQueryBitwise(t *testing.T) {
	for _, sc := range plannerModels(t) {
		n := sc.model.N()
		rw := regenrand.RewardsFrom(n, func(i int) float64 {
			return float64((i*29+3)%11) / 10
		})
		t1 := sc.times[len(sc.times)-1]
		t2 := 3 * t1
		long := regenrand.Query{Method: regenrand.MethodRRL, Rewards: rw, Times: []float64{t2}}
		short := regenrand.Query{Method: regenrand.MethodRRL, Rewards: rw, Times: sc.times}

		for _, disableRetention := range []bool{false, true} {
			// Reference: a fresh compile that has never seen the short horizon.
			fresh := compileFor(t, sc, regenrand.CompileOptions{DisableRetention: disableRetention})
			want, err := fresh.Query(long)
			if err != nil {
				t.Fatal(err)
			}
			wantBounds, err := fresh.QueryBounds(long)
			if err != nil {
				t.Fatal(err)
			}
			for _, procs := range []int{1, 8} {
				name := fmt.Sprintf("%s/retain=%v/procs=%d", sc.name, !disableRetention, procs)
				t.Run(name, func(t *testing.T) {
					old := runtime.GOMAXPROCS(procs)
					defer runtime.GOMAXPROCS(old)
					cm := compileFor(t, sc, regenrand.CompileOptions{DisableRetention: disableRetention})
					if _, err := cm.Query(short); err != nil {
						t.Fatal(err)
					}
					got, err := cm.Query(long)
					if err != nil {
						t.Fatal(err)
					}
					bitsEqualResults(t, "extended to t2 after t1", got, want)
					gotBounds, err := cm.QueryBounds(long)
					if err != nil {
						t.Fatal(err)
					}
					for j := range gotBounds {
						if gotBounds[j].Lower != wantBounds[j].Lower || gotBounds[j].Upper != wantBounds[j].Upper {
							t.Errorf("bounds t=%v: extended [%v,%v] differs from fresh [%v,%v]",
								gotBounds[j].T, gotBounds[j].Lower, gotBounds[j].Upper,
								wantBounds[j].Lower, wantBounds[j].Upper)
						}
					}
				})
			}
		}
	}
}

// Concurrent extensions racing on one compiled model — eight goroutines
// sweeping interleaved ascending horizons over the same measure — must
// every one observe answers bitwise-identical to a serial loop on a fresh
// model. The chain store is append-only and extension is deterministic, so
// whoever extends first, everyone reads the same prefix. Run under -race.
func TestConcurrentExtensionBitwise(t *testing.T) {
	sc := plannerModels(t)[0] // Fig 3 G=20
	n := sc.model.N()
	rw := regenrand.RewardsFrom(n, func(i int) float64 {
		return float64((i*17+5)%7) / 6
	})
	horizons := []float64{2, 5, 10, 20, 50, 100, 200, 500}

	for _, disableRetention := range []bool{false, true} {
		t.Run(fmt.Sprintf("retain=%v", !disableRetention), func(t *testing.T) {
			serial := compileFor(t, sc, regenrand.CompileOptions{DisableRetention: disableRetention})
			want := make(map[float64][]regenrand.Result, len(horizons))
			for _, h := range horizons {
				res, err := serial.Query(regenrand.Query{Method: regenrand.MethodRRL, Rewards: rw, Times: []float64{h}})
				if err != nil {
					t.Fatal(err)
				}
				want[h] = res
			}

			cm := compileFor(t, sc, regenrand.CompileOptions{DisableRetention: disableRetention})
			const workers = 8
			type outcome struct {
				worker int
				h      float64
				res    []regenrand.Result
				err    error
			}
			results := make(chan outcome, workers*len(horizons))
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					// Each worker sweeps all horizons ascending but starts at
					// its own offset, so short-horizon reads race long-horizon
					// extensions of the same chains throughout the run.
					for k := 0; k < len(horizons); k++ {
						h := horizons[(k+w)%len(horizons)]
						res, err := cm.Query(regenrand.Query{Method: regenrand.MethodRRL, Rewards: rw, Times: []float64{h}})
						results <- outcome{w, h, res, err}
					}
				}(w)
			}
			wg.Wait()
			close(results)
			for o := range results {
				if o.err != nil {
					t.Fatalf("worker %d horizon %v: %v", o.worker, o.h, o.err)
				}
				bitsEqualResults(t, fmt.Sprintf("worker %d horizon %v", o.worker, o.h), o.res, want[o.h])
			}
		})
	}
}

// A cancellation landing mid-extension — after a shorter horizon has
// already populated the chains — must leave the valid prefix intact: the
// retry completes and agrees bitwise with a fresh compile that was never
// cancelled, for both the retained basis and the non-retaining incremental
// store.
func TestCancelMidExtensionThenRetryBitwise(t *testing.T) {
	model, ua := raidTestModel(t, 2)
	opts := regenrand.DefaultOptions()
	shortQ := regenrand.Query{Method: regenrand.MethodRRL, Rewards: ua, Times: []float64{10}}
	longQ := regenrand.Query{Method: regenrand.MethodRRL, Rewards: ua, Times: []float64{2000}}

	for _, disableRetention := range []bool{false, true} {
		t.Run(fmt.Sprintf("retain=%v", !disableRetention), func(t *testing.T) {
			copts := regenrand.CompileOptions{Options: opts, DisableRetention: disableRetention}
			fresh, err := regenrand.Compile(model, copts)
			if err != nil {
				t.Fatal(err)
			}
			want, err := fresh.Query(longQ)
			if err != nil {
				t.Fatal(err)
			}

			cm, err := regenrand.Compile(model, copts)
			if err != nil {
				t.Fatal(err)
			}
			// Establish the short-horizon prefix quietly, then cancel the
			// extension to the long horizon mid-stepping.
			if _, err := cm.Query(shortQ); err != nil {
				t.Fatal(err)
			}
			slowSteps(t)
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(10 * stepDelay)
				cancel()
			}()
			if _, err := cm.QueryCtx(ctx, longQ); !errors.Is(err, context.Canceled) {
				t.Fatalf("cancelled extension error %v does not wrap context.Canceled", err)
			}
			faultpoint.Reset()
			got, err := cm.Query(longQ)
			if err != nil {
				t.Fatal(err)
			}
			bitsEqualResults(t, "retry after cancelled extension", got, want)
		})
	}
}

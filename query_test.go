package regenrand_test

import (
	"math"
	"sync"
	"testing"

	"regenrand"
)

// concurrencyQueries builds a workload spanning methods, measures, two
// reward vectors and several (overlapping and distinct) time batches.
func concurrencyQueries(model *regenrand.CTMC) []regenrand.Query {
	ua := regenrand.RewardsFrom(model.N(), func(i int) float64 {
		if i%5 == 0 {
			return 1
		}
		return 0
	})
	perf := perfRewards(model.N())
	var qs []regenrand.Query
	for _, rewards := range [][]float64{ua, perf} {
		for _, method := range []regenrand.Method{
			regenrand.MethodSR, regenrand.MethodRSD, regenrand.MethodAU,
			regenrand.MethodMS, regenrand.MethodRR, regenrand.MethodRRL,
		} {
			for _, measure := range []regenrand.MeasureKind{regenrand.MeasureTRR, regenrand.MeasureMRR} {
				if method == regenrand.MethodMS && measure == regenrand.MeasureMRR {
					continue
				}
				for _, ts := range [][]float64{{1, 20}, {0.5, 100}, {7}} {
					qs = append(qs, regenrand.Query{
						Method: method, Measure: measure, Rewards: rewards, Times: ts,
					})
				}
			}
		}
	}
	return qs
}

// N goroutines sharing one CompiledModel across methods and measures must
// produce results bitwise-identical to a serial evaluation on a fresh
// compile — the core goroutine-safety and determinism contract of the
// query engine. Run under -race in CI.
func TestConcurrentQueriesBitwiseIdenticalToSerial(t *testing.T) {
	rm, err := regenrand.BuildRAID(regenrand.DefaultRAIDParams(1), false)
	if err != nil {
		t.Fatal(err)
	}
	model := rm.Chain
	qs := concurrencyQueries(model)

	// Serial reference on its own compiled model.
	serial, err := regenrand.Compile(model, regenrand.CompileOptions{Options: regenrand.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]regenrand.Result, len(qs))
	for i, q := range qs {
		res, err := serial.Query(q)
		if err != nil {
			t.Fatalf("serial query %d (%s/%s): %v", i, q.Method, q.Measure, err)
		}
		want[i] = res
	}

	// Concurrent pass: one shared compiled model, many goroutines, each
	// walking the workload from a different offset so cache populations
	// race in every order.
	shared, err := regenrand.Compile(model, regenrand.CompileOptions{Options: regenrand.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	got := make([][][]regenrand.Result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got[w] = make([][]regenrand.Result, len(qs))
			for k := 0; k < len(qs); k++ {
				i := (k + w*7) % len(qs)
				res, err := shared.Query(qs[i])
				if err != nil {
					t.Errorf("worker %d query %d: %v", w, i, err)
					return
				}
				got[w][i] = res
			}
		}(w)
	}
	wg.Wait()

	for w := 0; w < workers; w++ {
		for i := range qs {
			g := got[w][i]
			if g == nil {
				continue // worker errored; already reported
			}
			if len(g) != len(want[i]) {
				t.Fatalf("worker %d query %d: %d results want %d", w, i, len(g), len(want[i]))
			}
			for j := range g {
				if math.Float64bits(g[j].Value) != math.Float64bits(want[i][j].Value) {
					t.Errorf("worker %d query %d (%s/%s t=%v): %v differs from serial %v",
						w, i, qs[i].Method, qs[i].Measure, g[j].T, g[j].Value, want[i][j].Value)
				}
				if g[j].Steps != want[i][j].Steps {
					t.Errorf("worker %d query %d: steps %d want %d", w, i, g[j].Steps, want[i][j].Steps)
				}
			}
		}
	}

	// QueryBatch over the whole workload must agree too.
	batch := shared.QueryBatch(qs)
	for i, br := range batch {
		if br.Err != nil {
			t.Fatalf("batch query %d: %v", i, br.Err)
		}
		for j := range br.Results {
			if math.Float64bits(br.Results[j].Value) != math.Float64bits(want[i][j].Value) {
				t.Errorf("batch query %d t=%v: %v differs from serial %v",
					i, br.Results[j].T, br.Results[j].Value, want[i][j].Value)
			}
		}
	}
}

// Concurrent Measure creation for the same rewards must share one view and
// concurrent compiles through a cache must share one artifact.
func TestConcurrentMeasureAndCacheSharing(t *testing.T) {
	rm, err := regenrand.BuildRAID(regenrand.DefaultRAIDParams(1), false)
	if err != nil {
		t.Fatal(err)
	}
	model := rm.Chain
	ua := rm.UnavailabilityRewards()
	cc := regenrand.NewCompileCache(2)
	const workers = 16
	cms := make([]*regenrand.CompiledModel, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cm, err := cc.Compile(model, regenrand.CompileOptions{Options: regenrand.DefaultOptions()})
			if err != nil {
				t.Error(err)
				return
			}
			cms[w] = cm
			if _, err := cm.Query(regenrand.Query{Rewards: ua, Times: []float64{3}}); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if cms[w] != cms[0] {
			t.Fatalf("worker %d compiled a separate artifact", w)
		}
	}
}

package regenrand_test

import (
	"math"
	"strings"
	"testing"

	"regenrand"
)

// The bucketing grid, observed through EffectiveHorizon: every horizon
// rounds UP to a grid point at most one cell away, grid points map to
// themselves (idempotence), and the mapping is monotone — so a bucketed
// horizon is always a certified-at-least-as-deep horizon and re-bucketing
// is stable.
func TestEffectiveHorizonGridProperties(t *testing.T) {
	model, _ := raidTestModel(t, 1)
	for _, perDecade := range []int{1, 4, 8} {
		cm, err := regenrand.Compile(model, regenrand.CompileOptions{
			Options: regenrand.DefaultOptions(), HorizonBuckets: perDecade,
		})
		if err != nil {
			t.Fatal(err)
		}
		cell := math.Pow(10, 1/float64(perDecade))
		prev := 0.0
		for k := 0; k <= 400; k++ {
			tq := math.Pow(10, -2+float64(k)/50) // 1e-2 .. 1e6, log-spaced
			h, bucketed := cm.EffectiveHorizon(tq)
			if h < tq {
				t.Fatalf("buckets=%d: EffectiveHorizon(%v) = %v rounds DOWN", perDecade, tq, h)
			}
			if bucketed != (h != tq) {
				t.Fatalf("buckets=%d: EffectiveHorizon(%v) = (%v, %v) misreports bucketing", perDecade, tq, h, bucketed)
			}
			if h > tq*cell*(1+1e-12) {
				t.Fatalf("buckets=%d: EffectiveHorizon(%v) = %v overshoots one grid cell (%v)", perDecade, tq, h, tq*cell)
			}
			h2, b2 := cm.EffectiveHorizon(h)
			if h2 != h || b2 {
				t.Fatalf("buckets=%d: grid point %v re-buckets to (%v, %v)", perDecade, h, h2, b2)
			}
			if h < prev {
				t.Fatalf("buckets=%d: bucketing not monotone: %v then %v", perDecade, prev, h)
			}
			prev = h
		}
	}

	// Bucketing off (the default): horizons pass through untouched.
	plain, err := regenrand.Compile(model, regenrand.CompileOptions{Options: regenrand.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	if h, bucketed := plain.EffectiveHorizon(3.7); h != 3.7 || bucketed {
		t.Fatalf("bucketing disabled: EffectiveHorizon(3.7) = (%v, %v), want (3.7, false)", h, bucketed)
	}
}

// HorizonBuckets is part of the compile content key — models compiled with
// different grids never share cached artifacts — and negative values are
// rejected at the trust boundary.
func TestHorizonBucketsCompileKeyAndValidation(t *testing.T) {
	model, _ := raidTestModel(t, 1)
	opts := regenrand.DefaultOptions()
	keys := make(map[string]int)
	for _, buckets := range []int{0, 4, 8} {
		cm, err := regenrand.Compile(model, regenrand.CompileOptions{Options: opts, HorizonBuckets: buckets})
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := keys[cm.Key()]; dup {
			t.Fatalf("HorizonBuckets %d and %d share a compile key", prev, buckets)
		}
		keys[cm.Key()] = buckets
	}
	_, err := regenrand.Compile(model, regenrand.CompileOptions{Options: opts, HorizonBuckets: -1})
	if err == nil || !strings.Contains(err.Error(), "HorizonBuckets") {
		t.Fatalf("negative HorizonBuckets: err %v, want a HorizonBuckets validation error", err)
	}
}

// Bucketing changes answers only within the certified budget: both the
// exact and the bucketed evaluation are within epsilon of the true value
// (the bucketed series is truncated for a deeper horizon, which only
// tightens the remainder), so they agree within the combined bound, and
// the bucketed enclosures still contain the exact answers.
func TestBucketedAnswersWithinEpsilon(t *testing.T) {
	model, ua := raidTestModel(t, 2)
	opts := regenrand.DefaultOptions()
	exact, err := regenrand.Compile(model, regenrand.CompileOptions{Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	bucketed, err := regenrand.Compile(model, regenrand.CompileOptions{Options: opts, HorizonBuckets: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, tq := range []float64{3, 17, 60, 444, 2718} {
		q := regenrand.Query{Method: regenrand.MethodRRL, Rewards: ua, Times: []float64{tq}}
		e, err := exact.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := bucketed.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if d := math.Abs(e[0].Value - b[0].Value); d > 1e-9 {
			t.Errorf("t=%v: bucketed %v vs exact %v (Δ %v beyond the combined budget)", tq, b[0].Value, e[0].Value, d)
		}
		bb, err := bucketed.QueryBounds(q)
		if err != nil {
			t.Fatal(err)
		}
		if e[0].Value < bb[0].Lower-1e-9 || e[0].Value > bb[0].Upper+1e-9 {
			t.Errorf("t=%v: exact %v outside bucketed bounds [%v, %v]", tq, e[0].Value, bb[0].Lower, bb[0].Upper)
		}
	}
}

// The planner groups bucketed traffic by grid point, so a batch of
// near-miss horizons rides one multi-lane pass — and must stay
// bitwise-identical to a serial per-query loop on an identically-compiled
// model, exactly like exact-horizon planning.
func TestBucketedBatchBitwiseEqualsSerial(t *testing.T) {
	sc := plannerModels(t)[0] // Fig 3 G=20
	n := sc.model.N()
	// Distinct reward vectors × near-miss horizons that all round up to the
	// same grid point (10 on the 4-per-decade grid).
	var qs []regenrand.Query
	for mi := 0; mi < 4; mi++ {
		salt := mi
		rw := regenrand.RewardsFrom(n, func(i int) float64 {
			return float64((i*31+salt*7)%8) / 7
		})
		for _, tq := range []float64{6.0, 8.2, 9.5} {
			qs = append(qs, regenrand.Query{Method: regenrand.MethodRRL, Rewards: rw, Times: []float64{tq}})
		}
	}
	qs = append(qs, qs[0]) // byte-identical duplicate

	for _, disableRetention := range []bool{false, true} {
		copts := regenrand.CompileOptions{HorizonBuckets: 4, DisableRetention: disableRetention}
		serial := compileFor(t, sc, copts)
		want := make([]regenrand.QueryResult, len(qs))
		for i, q := range qs {
			r, err := serial.Query(q)
			want[i] = regenrand.QueryResult{Results: r, Err: err}
		}
		batch := compileFor(t, sc, copts)
		got := batch.QueryBatch(qs)
		assertBatchesIdentical(t, got, want)
	}
}

// RetainedBytes must account for series storage that grows after compile on
// a NON-retaining model too: the incremental extension store keeps the
// chains between queries, and the byte accounting must see them.
func TestRetainedBytesGrowsWithoutRetention(t *testing.T) {
	model, ua := raidTestModel(t, 1)
	cm, err := regenrand.Compile(model, regenrand.CompileOptions{
		Options: regenrand.DefaultOptions(), DisableRetention: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	before := cm.RetainedBytes()
	if _, err := cm.Query(regenrand.Query{Method: regenrand.MethodRRL, Rewards: ua, Times: []float64{100}}); err != nil {
		t.Fatal(err)
	}
	mid := cm.RetainedBytes()
	if mid <= before {
		t.Fatalf("RetainedBytes did not grow with the incremental store: %d -> %d", before, mid)
	}
	if _, err := cm.Query(regenrand.Query{Method: regenrand.MethodRRL, Rewards: ua, Times: []float64{2000}}); err != nil {
		t.Fatal(err)
	}
	if after := cm.RetainedBytes(); after <= mid {
		t.Fatalf("RetainedBytes did not grow with the chain extension: %d -> %d", mid, after)
	}
}

// The engine's work-sharing counters move with the traffic that causes
// them. They are process-global and monotone, so the test asserts deltas
// with >= — concurrent packages can only push them further.
func TestEngineStatsCounters(t *testing.T) {
	model, ua := raidTestModel(t, 1)
	cm, err := regenrand.Compile(model, regenrand.CompileOptions{Options: regenrand.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	q := regenrand.Query{Method: regenrand.MethodRRL, Rewards: ua, Times: []float64{50}}

	s0 := regenrand.ReadEngineStats()
	if _, err := cm.Query(q); err != nil {
		t.Fatal(err)
	}
	s1 := regenrand.ReadEngineStats()
	if s1.SeriesCacheMisses < s0.SeriesCacheMisses+1 {
		t.Errorf("first query: misses %d -> %d, want +>=1", s0.SeriesCacheMisses, s1.SeriesCacheMisses)
	}
	if _, err := cm.Query(q); err != nil {
		t.Fatal(err)
	}
	s2 := regenrand.ReadEngineStats()
	if s2.SeriesCacheHits < s1.SeriesCacheHits+1 {
		t.Errorf("repeat query: hits %d -> %d, want +>=1", s1.SeriesCacheHits, s2.SeriesCacheHits)
	}
	if _, err := cm.Query(regenrand.Query{Method: regenrand.MethodRRL, Rewards: ua, Times: []float64{500}}); err != nil {
		t.Fatal(err)
	}
	s3 := regenrand.ReadEngineStats()
	if s3.SeriesExtensions < s2.SeriesExtensions+1 {
		t.Errorf("deeper query: extensions %d -> %d, want +>=1", s2.SeriesExtensions, s3.SeriesExtensions)
	}
	if s3.ExtensionStepsSaved < s2.ExtensionStepsSaved+1 {
		t.Errorf("deeper query: steps saved %d -> %d, want +>=1", s2.ExtensionStepsSaved, s3.ExtensionStepsSaved)
	}
}

package regenrand_test

import (
	"math"
	"testing"

	"regenrand"
)

func buildTwoState(t *testing.T) *regenrand.CTMC {
	t.Helper()
	b := regenrand.NewBuilder(2)
	if err := b.AddTransition(0, 1, 0.25); err != nil {
		t.Fatal(err)
	}
	if err := b.AddTransition(1, 0, 2.0); err != nil {
		t.Fatal(err)
	}
	if err := b.SetInitial(0, 1); err != nil {
		t.Fatal(err)
	}
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestFacadeAllMethodsAgree exercises the public API end to end: the four
// methods of the paper must agree within their combined error bounds on
// both measures.
func TestFacadeAllMethodsAgree(t *testing.T) {
	model := buildTwoState(t)
	rewards := []float64{0, 1}
	opts := regenrand.DefaultOptions()

	solvers := map[string]regenrand.Solver{}
	var err error
	if solvers["SR"], err = regenrand.NewSR(model, rewards, opts); err != nil {
		t.Fatal(err)
	}
	if solvers["RSD"], err = regenrand.NewRSD(model, rewards, opts); err != nil {
		t.Fatal(err)
	}
	if solvers["RR"], err = regenrand.NewRR(model, rewards, 0, opts); err != nil {
		t.Fatal(err)
	}
	if solvers["RRL"], err = regenrand.NewRRL(model, rewards, 0, opts); err != nil {
		t.Fatal(err)
	}

	ts := []float64{0.5, 5, 50, 500}
	lambda, mu := 0.25, 2.0
	s := lambda + mu
	for name, solver := range solvers {
		if solver.Name() != name {
			t.Errorf("solver %s reports name %s", name, solver.Name())
		}
		res, err := solver.TRR(ts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i, tt := range ts {
			want := lambda / s * (1 - math.Exp(-s*tt))
			if math.Abs(res[i].Value-want) > 2e-12 {
				t.Errorf("%s t=%v: %v want %v", name, tt, res[i].Value, want)
			}
		}
		mres, err := solver.MRR(ts)
		if err != nil {
			t.Fatalf("%s MRR: %v", name, err)
		}
		for i, tt := range ts {
			want := lambda/s - lambda/(s*s*tt)*(1-math.Exp(-s*tt))
			if math.Abs(mres[i].Value-want) > 2e-12 {
				t.Errorf("%s MRR t=%v: %v want %v", name, tt, mres[i].Value, want)
			}
		}
	}
}

// TestRAIDFourMethodCrossValidation is the central integration test: on a
// moderate RAID instance all four methods must produce identical UA values
// within 2ε, and the three applicable methods identical UR values.
func TestRAIDFourMethodCrossValidation(t *testing.T) {
	params := regenrand.DefaultRAIDParams(8)
	opts := regenrand.DefaultOptions()
	ts := []float64{1, 10, 100, 1000}

	// Availability (irreducible): SR, RSD, RR, RRL.
	ua, err := regenrand.BuildRAID(params, false)
	if err != nil {
		t.Fatal(err)
	}
	uaRewards := ua.UnavailabilityRewards()
	var uaVals [][]regenrand.Result
	for _, mk := range []func() (regenrand.Solver, error){
		func() (regenrand.Solver, error) { return regenrand.NewSR(ua.Chain, uaRewards, opts) },
		func() (regenrand.Solver, error) { return regenrand.NewRSD(ua.Chain, uaRewards, opts) },
		func() (regenrand.Solver, error) { return regenrand.NewRR(ua.Chain, uaRewards, ua.Pristine, opts) },
		func() (regenrand.Solver, error) { return regenrand.NewRRL(ua.Chain, uaRewards, ua.Pristine, opts) },
	} {
		s, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.TRR(ts)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		uaVals = append(uaVals, res)
	}
	for i := range ts {
		ref := uaVals[0][i].Value
		for m := 1; m < len(uaVals); m++ {
			if math.Abs(uaVals[m][i].Value-ref) > 2.5e-12 {
				t.Errorf("UA t=%v: method %d gives %v, SR gives %v", ts[i], m, uaVals[m][i].Value, ref)
			}
		}
	}

	// Unreliability (absorbing): SR, RR, RRL.
	ur, err := regenrand.BuildRAID(params, true)
	if err != nil {
		t.Fatal(err)
	}
	urRewards := ur.UnreliabilityRewards()
	var urVals [][]regenrand.Result
	for _, mk := range []func() (regenrand.Solver, error){
		func() (regenrand.Solver, error) { return regenrand.NewSR(ur.Chain, urRewards, opts) },
		func() (regenrand.Solver, error) { return regenrand.NewRR(ur.Chain, urRewards, ur.Pristine, opts) },
		func() (regenrand.Solver, error) { return regenrand.NewRRL(ur.Chain, urRewards, ur.Pristine, opts) },
	} {
		s, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.TRR(ts)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		urVals = append(urVals, res)
	}
	for i := range ts {
		ref := urVals[0][i].Value
		for m := 1; m < len(urVals); m++ {
			if math.Abs(urVals[m][i].Value-ref) > 2.5e-12 {
				t.Errorf("UR t=%v: method %d gives %v, SR gives %v", ts[i], m, urVals[m][i].Value, ref)
			}
		}
	}
}

// TestRAIDStateCountFacade pins the paper's reported model sizes through
// the public API.
func TestRAIDStateCountFacade(t *testing.T) {
	m, err := regenrand.BuildRAID(regenrand.DefaultRAIDParams(20), false)
	if err != nil {
		t.Fatal(err)
	}
	if m.Chain.N() != 3841 {
		t.Errorf("G=20 states = %d, paper reports 3841", m.Chain.N())
	}
}

func TestSteadyStateFacade(t *testing.T) {
	model := buildTwoState(t)
	pi, err := regenrand.SteadyState(model, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi[1]-0.25/2.25) > 1e-11 {
		t.Errorf("pi[1]=%v want %v", pi[1], 0.25/2.25)
	}
}

func TestOracleFacade(t *testing.T) {
	model := buildTwoState(t)
	got, err := regenrand.OracleTRR(model, []float64{0, 1}, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.25 / 2.25 * (1 - math.Exp(-2.25*2))
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("oracle %v want %v", got, want)
	}
}

func TestRegenSeriesFacade(t *testing.T) {
	model := buildTwoState(t)
	series, err := regenrand.BuildRegenSeries(model, []float64{0, 1}, 0, regenrand.DefaultOptions(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if series.A[0] != 1 || series.Lambda != 2.0 {
		t.Errorf("series basics wrong: a(0)=%v Λ=%v", series.A[0], series.Lambda)
	}
	if got := series.Steps(); got != series.K {
		t.Errorf("Steps()=%d want K=%d for α_r=1", got, series.K)
	}
}

package regenrand_test

import (
	"fmt"
	"log"

	"regenrand"
)

// ExampleNewRRL computes the point unavailability of a repairable component
// with the paper's RRL method.
func ExampleNewRRL() {
	b := regenrand.NewBuilder(2)
	if err := b.AddTransition(0, 1, 0.1); err != nil { // failure, 0.1/h
		log.Fatal(err)
	}
	if err := b.AddTransition(1, 0, 2.0); err != nil { // repair, 2/h
		log.Fatal(err)
	}
	if err := b.SetInitial(0, 1); err != nil {
		log.Fatal(err)
	}
	model, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	solver, err := regenrand.NewRRL(model, []float64{0, 1}, 0, regenrand.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	res, err := solver.TRR([]float64{100})
	if err != nil {
		log.Fatal(err)
	}
	// Analytic steady value: 0.1/(0.1+2.0) ≈ 0.047619.
	fmt.Printf("UA(100h) = %.6f\n", res[0].Value)
	// Output: UA(100h) = 0.047619
}

// ExampleBuildRAID builds the paper's G=20 RAID availability model.
func ExampleBuildRAID() {
	m, err := regenrand.BuildRAID(regenrand.DefaultRAIDParams(20), false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("states=%d\n", m.Chain.N())
	// Output: states=3841
}

package regenrand_test

import (
	"fmt"
	"log"

	"regenrand"
)

// ExampleNewRRL computes the point unavailability of a repairable component
// with the paper's RRL method.
func ExampleNewRRL() {
	b := regenrand.NewBuilder(2)
	if err := b.AddTransition(0, 1, 0.1); err != nil { // failure, 0.1/h
		log.Fatal(err)
	}
	if err := b.AddTransition(1, 0, 2.0); err != nil { // repair, 2/h
		log.Fatal(err)
	}
	if err := b.SetInitial(0, 1); err != nil {
		log.Fatal(err)
	}
	model, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	solver, err := regenrand.NewRRL(model, []float64{0, 1}, 0, regenrand.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	res, err := solver.TRR([]float64{100})
	if err != nil {
		log.Fatal(err)
	}
	// Analytic steady value: 0.1/(0.1+2.0) ≈ 0.047619.
	fmt.Printf("UA(100h) = %.6f\n", res[0].Value)
	// Output: UA(100h) = 0.047619
}

// ExampleCompile demonstrates the compile/query lifecycle: one compiled
// model serves two different reward structures — the paper's whole point
// that the expensive series construction is paid once and every further
// measure is cheap.
func ExampleCompile() {
	b := regenrand.NewBuilder(2)
	if err := b.AddTransition(0, 1, 0.1); err != nil { // failure, 0.1/h
		log.Fatal(err)
	}
	if err := b.AddTransition(1, 0, 2.0); err != nil { // repair, 2/h
		log.Fatal(err)
	}
	if err := b.SetInitial(0, 1); err != nil {
		log.Fatal(err)
	}
	model, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	cm, err := regenrand.Compile(model, regenrand.CompileOptions{
		Options:    regenrand.DefaultOptions(),
		RegenState: 0, // the fault-free state
	})
	if err != nil {
		log.Fatal(err)
	}

	// First rewards vector: point unavailability (reward 1 on the down state).
	ua, err := cm.Query(regenrand.Query{
		Method:  regenrand.MethodRRL,
		Rewards: []float64{0, 1},
		Times:   []float64{100},
	})
	if err != nil {
		log.Fatal(err)
	}
	// Second rewards vector against the same compiled artifacts: expected
	// throughput, with the degraded state running at 40% capacity.
	thr, err := cm.Query(regenrand.Query{
		Method:  regenrand.MethodRRL,
		Measure: regenrand.MeasureMRR,
		Rewards: []float64{1, 0.4},
		Times:   []float64{100},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("UA(100h) = %.6f, mean throughput over 100h = %.6f\n",
		ua[0].Value, thr[0].Value)
	// Output: UA(100h) = 0.047619, mean throughput over 100h = 0.971565
}

// ExampleQueryBatch demonstrates planned batch serving: a batch of queries
// is analyzed before execution, so byte-identical requests are solved once
// and same-horizon RR/RRL requests share one grouped multi-lane series
// construction — with results identical to evaluating every query alone.
func ExampleCompiledModel_QueryBatch() {
	b := regenrand.NewBuilder(2)
	if err := b.AddTransition(0, 1, 0.1); err != nil { // failure, 0.1/h
		log.Fatal(err)
	}
	if err := b.AddTransition(1, 0, 2.0); err != nil { // repair, 2/h
		log.Fatal(err)
	}
	if err := b.SetInitial(0, 1); err != nil {
		log.Fatal(err)
	}
	model, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	cm, err := regenrand.Compile(model, regenrand.CompileOptions{
		Options:    regenrand.DefaultOptions(),
		RegenState: 0,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Three requests at one shared horizon: two distinct measures (grouped
	// onto one stepping pass) and a byte-identical duplicate of the first
	// (deduplicated, shares the solved result).
	ua := regenrand.Query{Rewards: []float64{0, 1}, Times: []float64{100}}
	thr := regenrand.Query{Measure: regenrand.MeasureMRR, Rewards: []float64{1, 0.4}, Times: []float64{100}}
	out := cm.QueryBatch([]regenrand.Query{ua, thr, ua})
	for _, qr := range out {
		if qr.Err != nil {
			log.Fatal(qr.Err)
		}
	}
	fmt.Printf("UA(100h) = %.6f, mean throughput over 100h = %.6f\n",
		out[0].Results[0].Value, out[1].Results[0].Value)
	fmt.Printf("duplicate matches: %v\n", out[2].Results[0].Value == out[0].Results[0].Value)
	// Output:
	// UA(100h) = 0.047619, mean throughput over 100h = 0.971565
	// duplicate matches: true
}

// ExampleBuildRAID builds the paper's G=20 RAID availability model.
func ExampleBuildRAID() {
	m, err := regenrand.BuildRAID(regenrand.DefaultRAIDParams(20), false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("states=%d\n", m.Chain.N())
	// Output: states=3841
}

package regenrand

import "math"

// This file implements horizon bucketing, the cross-request half of the
// series work-sharing layer (the cross-time half is the in-place incremental
// extension in internal/regen). A compile with CompileOptions.HorizonBuckets
// = B > 0 rounds every RR/RRL query horizon UP to the geometric grid
//
//	{ 10^(i/B) : i ∈ ℤ }
//
// before the series is resolved, so near-miss horizons (t = 100.0 and
// t = 101.3, say) share one series-cache entry, one truncation depth, and —
// in a batch — one multi-lane stepping pass, instead of each paying its own
// construction.
//
// Rounding up is what keeps the answers certified: a series built for
// horizon h is valid for every t ≤ h (the truncation-error bounds are
// monotone in the horizon and the stopping rule is monotone in depth), so
// evaluating a query's times against the bucket's deeper series yields
// results that are still within the advertised Epsilon of the truth — in
// fact strictly more accurate, since the truncation is deeper than the exact
// horizon required. The values do change relative to an unbucketed compile,
// which is why HorizonBuckets is opt-in and part of the compile content key.

// bucketUp rounds t up to the smallest point of the geometric grid
// 10^(i/perDecade) that is ≥ t. It is deterministic, monotone in t, and
// idempotent (grid points map to themselves), so equal horizons — bucketed
// or already on the grid — always share one series-cache key.
func bucketUp(t float64, perDecade int) float64 {
	b := float64(perDecade)
	grid := func(i float64) float64 { return math.Pow(10, i/b) }
	i := math.Ceil(b * math.Log10(t))
	// log10/ceil rounding can land one grid step off in either direction;
	// walk to the minimal i with grid(i) ≥ t.
	for grid(i-1) >= t {
		i--
	}
	for grid(i) < t {
		i++
	}
	return grid(i)
}

// bucketHorizon maps a query horizon onto the compile's horizon grid: the
// identity without bucketing, otherwise the smallest grid point ≥ t.
// Invalid horizons (and grid points that would overflow to +Inf) pass
// through unchanged so the series layer reports them like any other bad
// horizon.
func (cm *CompiledModel) bucketHorizon(t float64) float64 {
	if cm.copts.HorizonBuckets <= 0 || !(t > 0) || math.IsInf(t, 1) {
		return t
	}
	g := bucketUp(t, cm.copts.HorizonBuckets)
	if math.IsInf(g, 1) || !(g > 0) {
		return t
	}
	return g
}

// EffectiveHorizon reports the horizon the regenerative series certifies for
// an RR/RRL query whose largest time point is t: t itself on a compile
// without horizon bucketing, otherwise t rounded up to the compile's
// geometric grid. The boolean reports whether bucketing changed the horizon
// — the serving layer discloses that per result row, since bucketed answers
// differ from an unbucketed compile's (they are strictly more accurate,
// still certified within Epsilon).
func (cm *CompiledModel) EffectiveHorizon(t float64) (float64, bool) {
	h := cm.bucketHorizon(t)
	return h, h != t
}

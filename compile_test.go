package regenrand_test

import (
	"math"
	"testing"

	"regenrand"
)

// raidTestModel builds a small RAID availability model (irreducible, so all
// six methods apply) with its UA rewards.
func raidTestModel(t *testing.T, g int) (*regenrand.CTMC, []float64) {
	t.Helper()
	rm, err := regenrand.BuildRAID(regenrand.DefaultRAIDParams(g), false)
	if err != nil {
		t.Fatal(err)
	}
	return rm.Chain, rm.UnavailabilityRewards()
}

// perfRewards is a second reward structure over the same model, so one
// compile serves several measures.
func perfRewards(n int) []float64 {
	return regenrand.RewardsFrom(n, func(i int) float64 {
		return 1 + float64(i%7)/3
	})
}

func bitsEqualResults(t *testing.T, ctx string, got, want []regenrand.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results want %d", ctx, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i].Value) != math.Float64bits(want[i].Value) {
			t.Errorf("%s: t=%v value %v differs from classic %v (bit-level)",
				ctx, got[i].T, got[i].Value, want[i].Value)
		}
		if got[i].Steps != want[i].Steps {
			t.Errorf("%s: t=%v steps %d want %d", ctx, got[i].T, got[i].Steps, want[i].Steps)
		}
	}
}

// Every query against a compiled model must agree bitwise with the classic
// construct-and-solve path for the same method, measure, rewards and batch.
func TestCompiledQueryMatchesClassicSolvers(t *testing.T) {
	model, ua := raidTestModel(t, 1)
	perf := perfRewards(model.N())
	opts := regenrand.DefaultOptions()

	cm, err := regenrand.Compile(model, regenrand.CompileOptions{Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	ts := []float64{0, 1, 10, 100}

	classic := func(method regenrand.Method, rewards []float64) regenrand.Solver {
		t.Helper()
		var s regenrand.Solver
		var err error
		switch method {
		case regenrand.MethodSR:
			s, err = regenrand.NewSR(model, rewards, opts)
		case regenrand.MethodRSD:
			s, err = regenrand.NewRSD(model, rewards, opts)
		case regenrand.MethodAU:
			s, err = regenrand.NewAU(model, rewards, opts)
		case regenrand.MethodMS:
			s, err = regenrand.NewMultistep(model, rewards, 0, opts)
		case regenrand.MethodRR:
			s, err = regenrand.NewRR(model, rewards, 0, opts)
		case regenrand.MethodRRL:
			s, err = regenrand.NewRRL(model, rewards, 0, opts)
		}
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	for _, rewards := range [][]float64{ua, perf} {
		for _, method := range []regenrand.Method{
			regenrand.MethodSR, regenrand.MethodRSD, regenrand.MethodAU,
			regenrand.MethodMS, regenrand.MethodRR, regenrand.MethodRRL,
		} {
			for _, measure := range []regenrand.MeasureKind{regenrand.MeasureTRR, regenrand.MeasureMRR} {
				if method == regenrand.MethodMS && measure == regenrand.MeasureMRR {
					continue // MS is TRR-only by construction
				}
				s := classic(method, rewards)
				var want []regenrand.Result
				var err error
				if measure == regenrand.MeasureMRR {
					want, err = s.MRR(ts)
				} else {
					want, err = s.TRR(ts)
				}
				if err != nil {
					t.Fatalf("%s/%s classic: %v", method, measure, err)
				}
				got, err := cm.Query(regenrand.Query{
					Method: method, Measure: measure, Rewards: rewards, Times: ts,
				})
				if err != nil {
					t.Fatalf("%s/%s query: %v", method, measure, err)
				}
				bitsEqualResults(t, string(method)+"/"+string(measure), got, want)
			}
		}
	}
}

// Retention must not change values: the retained-vector binding and the
// re-stepping binding are the same arithmetic.
func TestRetentionModesAgreeBitwise(t *testing.T) {
	model, ua := raidTestModel(t, 1)
	opts := regenrand.DefaultOptions()
	retained, err := regenrand.Compile(model, regenrand.CompileOptions{Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	lean, err := regenrand.Compile(model, regenrand.CompileOptions{Options: opts, DisableRetention: true})
	if err != nil {
		t.Fatal(err)
	}
	q := regenrand.Query{Method: regenrand.MethodRRL, Rewards: ua, Times: []float64{1, 50, 400}}
	a, err := retained.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	b, err := lean.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	bitsEqualResults(t, "retention modes", a, b)
}

// Certified bounds through the engine must match the classic bounding
// solvers.
func TestQueryBoundsMatchClassic(t *testing.T) {
	model, ua := raidTestModel(t, 1)
	opts := regenrand.DefaultOptions()
	cm, err := regenrand.Compile(model, regenrand.CompileOptions{Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	ts := []float64{1, 10, 100}
	for _, method := range []regenrand.Method{regenrand.MethodRR, regenrand.MethodRRL} {
		var classic regenrand.BoundingSolver
		var s regenrand.Solver
		if method == regenrand.MethodRR {
			s, err = regenrand.NewRR(model, ua, 0, opts)
		} else {
			s, err = regenrand.NewRRL(model, ua, 0, opts)
		}
		if err != nil {
			t.Fatal(err)
		}
		classic = s.(regenrand.BoundingSolver)
		want, err := classic.TRRBounds(ts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cm.QueryBounds(regenrand.Query{Method: method, Rewards: ua, Times: ts})
		if err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if math.Float64bits(got[i].Lower) != math.Float64bits(want[i].Lower) ||
				math.Float64bits(got[i].Upper) != math.Float64bits(want[i].Upper) {
				t.Errorf("%s bounds at t=%v: [%v,%v] want [%v,%v]", method,
					ts[i], got[i].Lower, got[i].Upper, want[i].Lower, want[i].Upper)
			}
		}
	}
	if _, err := cm.QueryBounds(regenrand.Query{Method: regenrand.MethodSR, Rewards: ua, Times: ts}); err == nil {
		t.Error("SR bounds accepted")
	}
}

// The compile cache must key by content: structurally identical models and
// options share one artifact, different options do not.
func TestCompileCacheContentKeying(t *testing.T) {
	modelA, ua := raidTestModel(t, 1)
	modelB, _ := raidTestModel(t, 1) // separate Build, same content
	if modelA == modelB {
		t.Fatal("test premise: distinct pointers expected")
	}
	opts := regenrand.DefaultOptions()
	cc := regenrand.NewCompileCache(4)
	cmA, err := cc.Compile(modelA, regenrand.CompileOptions{Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	cmB, err := cc.Compile(modelB, regenrand.CompileOptions{Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	if cmA != cmB {
		t.Error("identical content compiled twice")
	}
	if got, ok := cc.Get(cmA.Key()); !ok || got != cmA {
		t.Error("Get by key failed")
	}
	opts2 := opts
	opts2.Epsilon = 1e-10
	cmC, err := cc.Compile(modelA, regenrand.CompileOptions{Options: opts2})
	if err != nil {
		t.Fatal(err)
	}
	if cmC == cmA {
		t.Error("different epsilon shared an artifact")
	}
	// Defaulted and explicit uniformization factor share a key.
	optsDefaulted := regenrand.Options{Epsilon: opts.Epsilon}
	cmD, err := cc.Compile(modelA, regenrand.CompileOptions{Options: optsDefaulted})
	if err != nil {
		t.Fatal(err)
	}
	if cmD != cmA {
		t.Error("normalized options did not share the artifact")
	}
	// A direct Compile with defaulted options must produce the same content
	// key the cache uses, so its Key() round-trips through CompileCache.Get.
	direct, err := regenrand.Compile(modelA, regenrand.CompileOptions{Options: optsDefaulted})
	if err != nil {
		t.Fatal(err)
	}
	if direct.Key() != cmA.Key() {
		t.Errorf("direct Compile key %q != cached key %q", direct.Key(), cmA.Key())
	}
	// A query against the cached artifact works end to end.
	if _, err := cmA.Query(regenrand.Query{Rewards: ua, Times: []float64{10}}); err != nil {
		t.Fatal(err)
	}
}

// Engine validation errors.
func TestQueryValidation(t *testing.T) {
	model, ua := raidTestModel(t, 1)
	opts := regenrand.DefaultOptions()
	cm, err := regenrand.Compile(model, regenrand.CompileOptions{Options: opts, RegenState: regenrand.NoRegen})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cm.Query(regenrand.Query{Method: regenrand.MethodRRL, Rewards: ua, Times: []float64{1}}); err == nil {
		t.Error("RRL on a NoRegen compile accepted")
	}
	if _, err := cm.Query(regenrand.Query{Method: "XX", Rewards: ua, Times: []float64{1}}); err == nil {
		t.Error("unknown method accepted")
	}
	if _, err := cm.Query(regenrand.Query{Measure: "XX", Rewards: ua, Times: []float64{1}}); err == nil {
		t.Error("unknown measure accepted")
	}
	if _, err := cm.Query(regenrand.Query{Rewards: ua, Times: nil}); err == nil {
		t.Error("empty times accepted")
	}
	if _, err := cm.Query(regenrand.Query{Rewards: ua[:3], Times: []float64{1}}); err == nil {
		t.Error("short rewards accepted")
	}
	// Default method on a NoRegen compile is SR and works.
	res, err := cm.Query(regenrand.Query{Rewards: ua, Times: []float64{5}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("want 1 result, got %d", len(res))
	}

	// Negative regenerative states other than the NoRegen sentinel are
	// rejected at compile, and the classic constructors reject every
	// negative value at construction (never deferring to a solve-time
	// panic).
	if _, err := regenrand.Compile(model, regenrand.CompileOptions{Options: opts, RegenState: -5}); err == nil {
		t.Error("Compile accepted regen state -5")
	}
	for _, rs := range []int{-1, -5} {
		if _, err := regenrand.NewRR(model, ua, rs, opts); err == nil {
			t.Errorf("NewRR accepted regen state %d", rs)
		}
		if _, err := regenrand.NewRRL(model, ua, rs, opts); err == nil {
			t.Errorf("NewRRL accepted regen state %d", rs)
		}
	}
}

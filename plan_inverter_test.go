package regenrand

import (
	"context"
	"math"
	"testing"
)

// The planner must never group queries with different effective backends
// into one lane pass. The observable: singleton groups skip the prewarm, so
// two same-horizon queries that differ only in backend leave the series
// caches cold, while the same pair under one backend warms both.
func TestPlannerSplitsMixedBackendGroups(t *testing.T) {
	rm, err := BuildRAID(DefaultRAIDParams(2), false)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Epsilon = 1e-6 // inside euler's certified floor
	n := rm.Chain.N()
	rewards := func(salt int) []float64 {
		return RewardsFrom(n, func(i int) float64 { return float64((i*13+salt*3)%5) / 4 })
	}
	times := []float64{5}
	queries := func(secondBackend string) []Query {
		return []Query{
			{Method: MethodRRL, Rewards: rewards(0), Times: times, Inverter: DurbinInverter},
			{Method: MethodRRL, Rewards: rewards(1), Times: times, Inverter: secondBackend},
		}
	}
	// DisableRetention makes the prewarm observable: the non-retaining path
	// seeds each measure's per-horizon series cache.
	compile := func() *CompiledModel {
		cm, err := Compile(rm.Chain, CompileOptions{Options: opts, RegenState: rm.Pristine, DisableRetention: true})
		if err != nil {
			t.Fatal(err)
		}
		return cm
	}
	warmed := func(cm *CompiledModel, q Query) bool {
		m, err := cm.measureByKeyCtx(context.Background(), rewardsKey(q.Rewards), q.Rewards)
		if err != nil {
			t.Fatal(err)
		}
		_, ok := m.series.Get(math.Float64bits(cm.bucketHorizon(times[0])))
		return ok
	}

	// Control: one backend, two measures, one horizon — a real group, so
	// planning prewarms both series (proves the observable is live).
	cm := compile()
	cm.planBatchCtx(context.Background(), queries(DurbinInverter))
	for i, q := range queries(DurbinInverter) {
		if !warmed(cm, q) {
			t.Fatalf("same-backend control: measure %d not prewarmed — the observable is dead, fix the test", i)
		}
	}

	// Mixed backends at the same horizon: two singleton groups, no prewarm.
	cm = compile()
	plan := cm.planBatchCtx(context.Background(), queries(EulerInverter))
	if len(plan.unique) != 2 || len(plan.dup) != 0 {
		t.Fatalf("mixed-backend pair planned as unique=%d dup=%d, want 2 distinct requests", len(plan.unique), len(plan.dup))
	}
	for i, q := range queries(EulerInverter) {
		if warmed(cm, q) {
			t.Errorf("mixed-backend query %d was prewarmed: the planner grouped across backends", i)
		}
	}

	// Requests identical up to the backend are distinct, not duplicates.
	q := Query{Method: MethodRRL, Rewards: rewards(0), Times: times}
	cm = compile()
	plan = cm.planBatchCtx(context.Background(), []Query{
		{Method: q.Method, Rewards: q.Rewards, Times: q.Times, Inverter: DurbinInverter},
		{Method: q.Method, Rewards: q.Rewards, Times: q.Times, Inverter: EulerInverter},
	})
	if len(plan.dup) != 0 {
		t.Error("queries differing only in backend were deduplicated into one solve")
	}
}

module regenrand

go 1.24

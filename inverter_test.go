package regenrand_test

import (
	"math"
	"runtime"
	"strings"
	"testing"

	"regenrand"
)

// inverterOptions is the cross-backend oracle's solver configuration:
// ε = 1e-6 sits inside Euler's certified roundoff floor (≈ 3e-9·rmax) while
// the paper-strength default 1e-12 does not — that rejection has its own
// test below.
func inverterOptions() regenrand.Options {
	opts := regenrand.DefaultOptions()
	opts.Epsilon = 1e-6
	return opts
}

// inverterWorkload builds an RRL batch over distinct reward vectors, both
// measures, and the scenario's horizon sweep.
func inverterWorkload(sc plannerScenario, measures int) []regenrand.Query {
	n := sc.model.N()
	var qs []regenrand.Query
	for mi := 0; mi < measures; mi++ {
		salt := mi
		rw := regenrand.RewardsFrom(n, func(i int) float64 {
			return float64((i*31+salt*7)%8) / 7
		})
		measure := regenrand.MeasureTRR
		if mi%2 == 1 {
			measure = regenrand.MeasureMRR
		}
		qs = append(qs, regenrand.Query{Method: regenrand.MethodRRL, Measure: measure, Rewards: rw, Times: sc.times})
	}
	return qs
}

// The standing cross-backend oracle: on the paper's Fig 3/4 G=20 models and
// the 10⁴-state band, Durbin and Euler each certify ε = 1e-6, so their
// values must agree within the combined budgets — and each backend's
// certified enclosure must contain the other backend's value. Pinned at
// GOMAXPROCS 1 and 8 (run under -race in CI), where each backend's batch
// must also stay bitwise-identical to its own serial loop.
func TestInverterCrossBackendOracle(t *testing.T) {
	const budget = 2e-6 // ε_durbin + ε_euler
	for _, sc := range plannerModels(t) {
		measures := 4
		if sc.name == "band1e4" {
			measures = 2 // 10⁴-state series builds; keep the suite quick
		}
		qs := inverterWorkload(sc, measures)

		type backendRun struct {
			name   string
			serial []regenrand.QueryResult
			bounds []regenrand.BoundsResult
		}
		runs := make(map[string]*backendRun)
		for _, backend := range []string{regenrand.DurbinInverter, regenrand.EulerInverter} {
			copts := regenrand.CompileOptions{Options: inverterOptions(), RRL: regenrand.RRLConfig{Inverter: backend}}
			serial := compileFor(t, sc, copts)
			run := &backendRun{name: backend, serial: make([]regenrand.QueryResult, len(qs)), bounds: make([]regenrand.BoundsResult, len(qs))}
			for i, q := range qs {
				r, err := serial.Query(q)
				if err != nil {
					t.Fatalf("%s/%s query %d: %v", sc.name, backend, i, err)
				}
				run.serial[i] = regenrand.QueryResult{Results: r}
				b, err := serial.QueryBounds(q)
				if err != nil {
					t.Fatalf("%s/%s bounds %d: %v", sc.name, backend, i, err)
				}
				run.bounds[i] = regenrand.BoundsResult{Bounds: b}
			}
			runs[backend] = run

			for _, procs := range []int{1, 8} {
				old := runtime.GOMAXPROCS(procs)
				batch := compileFor(t, sc, copts)
				got := batch.QueryBatch(qs)
				runtime.GOMAXPROCS(old)
				assertBatchesIdentical(t, got, run.serial)
			}
		}

		du, eu := runs[regenrand.DurbinInverter], runs[regenrand.EulerInverter]
		for i := range qs {
			for j := range du.serial[i].Results {
				d := du.serial[i].Results[j]
				e := eu.serial[i].Results[j]
				if diff := math.Abs(d.Value - e.Value); diff > budget {
					t.Errorf("%s query %d t=%v: durbin %v vs euler %v (Δ %g beyond the combined budget)",
						sc.name, i, d.T, d.Value, e.Value, diff)
				}
				// Cross-enclosure: each backend's certified interval must
				// contain the other backend's value within that backend's ε.
				db, eb := du.bounds[i].Bounds[j], eu.bounds[i].Bounds[j]
				if e.Value < db.Lower-1e-6 || e.Value > db.Upper+1e-6 {
					t.Errorf("%s query %d t=%v: euler %v outside durbin bounds [%v, %v]",
						sc.name, i, d.T, e.Value, db.Lower, db.Upper)
				}
				if d.Value < eb.Lower-1e-6 || d.Value > eb.Upper+1e-6 {
					t.Errorf("%s query %d t=%v: durbin %v outside euler bounds [%v, %v]",
						sc.name, i, d.T, d.Value, eb.Lower, eb.Upper)
				}
			}
		}
	}
}

// The backend is part of the compile's content key: durbin and euler
// compiles of one model must occupy distinct cache/snapshot identities,
// while the empty default normalizes onto durbin's.
func TestInverterSplitsCompileKey(t *testing.T) {
	model, _ := raidTestModel(t, 2)
	keys := make(map[string]string)
	for _, backend := range []string{"", regenrand.DurbinInverter, regenrand.EulerInverter} {
		cm, err := regenrand.Compile(model, regenrand.CompileOptions{Options: inverterOptions(), RRL: regenrand.RRLConfig{Inverter: backend}})
		if err != nil {
			t.Fatal(err)
		}
		keys[backend] = cm.Key()
		if want := backend; want == "" {
			want = regenrand.DurbinInverter
		} else if got := cm.RRLConfig().Inverter; got != want {
			t.Errorf("RRLConfig().Inverter = %q, want %q", got, want)
		}
	}
	if keys[""] != keys[regenrand.DurbinInverter] {
		t.Error("default-inverter compile does not share the explicit durbin key")
	}
	if keys[regenrand.EulerInverter] == keys[regenrand.DurbinInverter] {
		t.Error("euler compile shares the durbin key")
	}
	if _, err := regenrand.Compile(model, regenrand.CompileOptions{Options: inverterOptions(), RRL: regenrand.RRLConfig{Inverter: "talbot"}}); err == nil || !strings.Contains(err.Error(), "talbot") {
		t.Errorf("unknown backend compile: %v, want an error naming it", err)
	}
}

// The inverter selection must survive a snapshot round trip: a warm restart
// of an euler compile answers bitwise-identically and keeps the euler key.
func TestInverterSnapshotRoundTrip(t *testing.T) {
	model, ua := raidTestModel(t, 2)
	cm, err := regenrand.Compile(model, regenrand.CompileOptions{Options: inverterOptions(), RRL: regenrand.RRLConfig{Inverter: regenrand.EulerInverter}})
	if err != nil {
		t.Fatal(err)
	}
	q := regenrand.Query{Method: regenrand.MethodRRL, Rewards: ua, Times: []float64{1, 10, 100}}
	want, err := cm.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := cm.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	warm, err := regenrand.LoadSnapshot(blob)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Key() != cm.Key() {
		t.Error("restored compile does not share the euler key")
	}
	if got := warm.RRLConfig().Inverter; got != regenrand.EulerInverter {
		t.Errorf("restored RRLConfig().Inverter = %q, want euler", got)
	}
	got, err := warm.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	for j := range want {
		if math.Float64bits(got[j].Value) != math.Float64bits(want[j].Value) {
			t.Errorf("t=%v: restored %v differs from pre-snapshot %v", want[j].T, got[j].Value, want[j].Value)
		}
	}
}

// A per-query override on a durbin compile runs the same retained series
// through the euler evaluator, so it must reproduce the euler compile's own
// answers bitwise; overrides on methods that never invert, and unknown
// names, are per-query errors.
func TestQueryInverterOverride(t *testing.T) {
	model, ua := raidTestModel(t, 2)
	durbin, err := regenrand.Compile(model, regenrand.CompileOptions{Options: inverterOptions()})
	if err != nil {
		t.Fatal(err)
	}
	euler, err := regenrand.Compile(model, regenrand.CompileOptions{Options: inverterOptions(), RRL: regenrand.RRLConfig{Inverter: regenrand.EulerInverter}})
	if err != nil {
		t.Fatal(err)
	}
	times := []float64{1, 10, 100}
	want, err := euler.Query(regenrand.Query{Method: regenrand.MethodRRL, Rewards: ua, Times: times})
	if err != nil {
		t.Fatal(err)
	}
	got, err := durbin.Query(regenrand.Query{Method: regenrand.MethodRRL, Rewards: ua, Times: times, Inverter: regenrand.EulerInverter})
	if err != nil {
		t.Fatal(err)
	}
	for j := range want {
		if math.Float64bits(got[j].Value) != math.Float64bits(want[j].Value) {
			t.Errorf("t=%v: override %v differs from euler compile %v", want[j].T, got[j].Value, want[j].Value)
		}
	}
	if _, err := durbin.Query(regenrand.Query{Method: regenrand.MethodSR, Rewards: ua, Times: times, Inverter: regenrand.EulerInverter}); err == nil || !strings.Contains(err.Error(), "only RRL inverts") {
		t.Errorf("SR with an inverter override: %v, want the only-RRL rejection", err)
	}
	if _, err := durbin.Query(regenrand.Query{Method: regenrand.MethodRRL, Rewards: ua, Times: times, Inverter: "talbot"}); err == nil || !strings.Contains(err.Error(), "talbot") {
		t.Errorf("unknown override: %v, want an error naming it", err)
	}
}

// Euler's certified roundoff floor cannot meet the paper-strength
// ε = 1e-12: the compile succeeds (backend validity is a compile property,
// the floor depends on the query's budget arithmetic), and every RRL query
// is rejected with the budget error instead of returning an uncertified
// value.
func TestEulerRejectsPaperStrengthEpsilon(t *testing.T) {
	model, ua := raidTestModel(t, 2)
	cm, err := regenrand.Compile(model, regenrand.CompileOptions{Options: regenrand.DefaultOptions(), RRL: regenrand.RRLConfig{Inverter: regenrand.EulerInverter}})
	if err != nil {
		t.Fatalf("euler compile at ε=1e-12 must succeed: %v", err)
	}
	if _, err := cm.Query(regenrand.Query{Method: regenrand.MethodRRL, Rewards: ua, Times: []float64{10}}); err == nil || !strings.Contains(err.Error(), "cannot meet tolerance") {
		t.Errorf("euler RRL query at ε=1e-12: %v, want the certified-budget rejection", err)
	}
	// The non-inverting methods on the same compile are untouched by the
	// backend choice and still run at full strength.
	if _, err := cm.Query(regenrand.Query{Method: regenrand.MethodSR, Rewards: ua, Times: []float64{10}}); err != nil {
		t.Errorf("SR on the euler compile: %v", err)
	}
}

package regenrand

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"math"

	"regenrand/internal/core"
	"regenrand/internal/regen"
)

// This file is the query planner sitting between QueryBatch /
// QueryBoundsBatch and the solvers. A batch of requests is analyzed before
// any of them executes:
//
//   - byte-identical requests are deduplicated by content fingerprint, so a
//     batch that submits the same (method, measure, rewards, times) twice
//     solves it once and fans the shared result out;
//   - RR/RRL requests are grouped by horizon class (the certified horizon:
//     the max of the request's times, rounded up to the compile's geometric
//     grid when horizon bucketing is on — see horizon.go), and each group's
//     distinct
//     reward vectors are executed as dot lanes of ONE multi-lane stepping
//     pass — regen.Basis.BuildMany on non-retaining compiled models (every
//     lane rides one traversal of the DTMC per step), the grouped
//     multi-rewards replay regen.Basis.PrebindMany on retaining ones (the
//     retained vectors are streamed once per block for all lanes).
//
// Planning is purely a throughput optimization: the grouped constructions
// are bitwise-identical to their per-query counterparts (tested), the
// planner only seeds the same caches the per-query path would populate, and
// evaluation still runs through Query/QueryBounds — so a planned batch
// returns results bitwise-identical to a serial per-query loop, in any
// order, at any GOMAXPROCS.

// batchPlan is the outcome of planning one batch: the canonical request
// indices to evaluate, and the fan-out map for deduplicated requests.
type batchPlan struct {
	unique []int
	dup    map[int]int // request index → canonical request index
}

// groupMember is one distinct measure of a horizon group.
type groupMember struct {
	m       *CompiledMeasure
	rewards []float64
}

// planGroupKey is the lane-pass grouping key: the effective (bucketed)
// horizon's bits plus the effective Laplace backend. Queries with different
// backends are never grouped into one lane pass, even at the same horizon —
// their evaluators differ, so sharing a pass would couple requests whose
// inversion configurations (and failure modes, e.g. Euler's budget
// rejection) are independent.
type planGroupKey struct {
	horizon  uint64
	inverter string
}

// plannerMaxGroupLanes bounds the reward lanes of one grouped stepping
// pass; larger groups run as consecutive multi-lane passes, keeping the
// interleaved-rewards copy and per-lane accumulator scratch bounded.
const plannerMaxGroupLanes = 32

// plannerMeasureBudget bounds the measures one batch plans across all
// groups: beyond the measure LRU's capacity, prewarmed series would be
// evicted before evaluation reads them, making grouping pure waste — the
// overflow simply falls back to the lazy per-query path.
const plannerMeasureBudget = measureCacheCap - 8

// fingerprint is the content key of one normalized request; requests with
// equal fingerprints are interchangeable byte by byte. rk must be the
// request's rewardsKey — the rewards vector is hashed once per query and
// the digest reused here, as the group key, and as the measure cache key.
func fingerprint(q Query, rk string) string {
	h := sha256.New()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	h.Write([]byte(q.Method))
	h.Write([]byte{0})
	h.Write([]byte(q.Measure))
	h.Write([]byte{0})
	h.Write([]byte(q.Inverter))
	h.Write([]byte{0})
	u64(uint64(int64(q.BlockSteps)))
	u64(uint64(len(q.Times)))
	for _, t := range q.Times {
		u64(math.Float64bits(t))
	}
	h.Write([]byte(rk))
	return string(h.Sum(nil))
}

// planBatchCtx normalizes and deduplicates the requests, then prewarms the
// grouped series/binding caches. It never fails: requests the planner
// cannot place in a group (invalid times or rewards, non-regenerative
// methods, no compiled regenerative state) are left for per-request
// evaluation, which reports their errors in order. A cancelled ctx stops
// the prewarm passes early — dedup information is still returned, and
// evaluation (which observes the same ctx) reports the cancellation per
// request.
func (cm *CompiledModel) planBatchCtx(ctx context.Context, qs []Query) batchPlan {
	p := batchPlan{dup: make(map[int]int)}
	seen := make(map[string]int, len(qs))
	// groups collects, per (horizon class, effective backend), the distinct
	// measures of the batch's RR/RRL requests (keyed by rewards content
	// hash).
	groups := make(map[planGroupKey]map[string]groupMember)
	// planned counts measures in groups that can actually be grouped (≥2
	// members); horizon singletons never prewarm, so they must not consume
	// the budget — a long time sweep ahead of a groupable tail would
	// otherwise starve the exact case the planner exists for.
	planned := 0
	for i := range qs {
		q := cm.normalize(qs[i])
		rk := rewardsKey(q.Rewards)
		fp := fingerprint(q, rk)
		if j, ok := seen[fp]; ok {
			p.dup[i] = j
			continue
		}
		seen[fp] = i
		p.unique = append(p.unique, i)

		if cm.basis == nil || (q.Method != MethodRR && q.Method != MethodRRL) {
			continue
		}
		if core.CheckTimes(q.Times) != nil {
			continue
		}
		// Group by the effective (bucketed) horizon: with HorizonBuckets on,
		// near-miss horizons collapse onto one grid point and ride one
		// multi-lane pass instead of grouping only on exact-bit matches.
		// The per-query path buckets identically (see QueryCtx), so the
		// prewarmed series land under the keys evaluation reads.
		horizon := cm.bucketHorizon(core.MaxTime(q.Times))
		if horizon <= 0 {
			continue
		}
		if planned >= plannerMeasureBudget {
			continue
		}
		m, err := cm.measureByKeyCtx(ctx, rk, q.Rewards)
		if err != nil {
			continue
		}
		inverter := q.Inverter
		if inverter == "" {
			inverter = cm.copts.RRL.Inverter
		}
		gk := planGroupKey{horizon: math.Float64bits(horizon), inverter: inverter}
		g := groups[gk]
		if g == nil {
			g = make(map[string]groupMember)
			groups[gk] = g
		}
		if _, ok := g[rk]; !ok {
			g[rk] = groupMember{m: m, rewards: m.rewards}
			switch len(g) {
			case 1: // singleton — free until a second member arrives
			case 2:
				planned += 2
			default:
				planned++
			}
		}
	}
	for gk, g := range groups {
		if len(g) < 2 {
			continue // nothing to amortize; the lazy per-query path is exact
		}
		if ctx.Err() != nil {
			break // prewarm is an optimization; evaluation reports the cancel
		}
		cm.prewarmGroup(ctx, math.Float64frombits(gk.horizon), g)
	}
	return p
}

// prewarmGroup executes one horizon class's reward vectors as lanes of one
// stepping pass and seeds the per-measure caches the per-query path reads.
// Prewarm failures — including cancellation mid-pass — are deliberately
// swallowed: evaluation re-runs the lazy path and reports the error on the
// owning request.
func (cm *CompiledModel) prewarmGroup(ctx context.Context, horizon float64, g map[string]groupMember) {
	if cm.basis.Retains() {
		bds := make([]*regen.Binding, 0, len(g))
		for _, mb := range g {
			if mb.m.binding != nil {
				bds = append(bds, mb.m.binding)
			}
		}
		for len(bds) > 0 {
			n := len(bds)
			if n > plannerMaxGroupLanes {
				n = plannerMaxGroupLanes
			}
			if err := cm.basis.PrebindManyCtx(ctx, bds[:n], horizon); err != nil {
				return
			}
			bds = bds[n:]
		}
		return
	}
	// Non-retaining: one multi-lane construction (per lane-capped slice)
	// for every measure whose series cache misses this horizon.
	var members []groupMember
	var rewardsList [][]float64
	for _, mb := range g {
		if _, ok := mb.m.series.Get(math.Float64bits(horizon)); ok {
			continue
		}
		members = append(members, mb)
		rewardsList = append(rewardsList, mb.rewards)
	}
	if len(members) < 2 {
		return
	}
	for len(members) > 0 {
		n := len(members)
		if n > plannerMaxGroupLanes {
			n = plannerMaxGroupLanes
		}
		built, err := cm.basis.BuildManyCtx(ctx, rewardsList[:n], horizon)
		if err != nil {
			return
		}
		for i, mb := range members[:n] {
			s := built[i]
			_, _ = mb.m.series.GetOrCreate(math.Float64bits(horizon), func() (*regen.Series, error) {
				return s, nil
			})
		}
		members = members[n:]
		rewardsList = rewardsList[n:]
	}
}

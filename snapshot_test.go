package regenrand_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"

	"regenrand"
	"regenrand/internal/ctmc"
	"regenrand/internal/faultpoint"
	"regenrand/internal/snapshot"
	"regenrand/internal/store"
)

func bitsEqualBounds(t *testing.T, ctx string, got, want []regenrand.Bounds) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d bounds want %d", ctx, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i].Lower) != math.Float64bits(want[i].Lower) ||
			math.Float64bits(got[i].Upper) != math.Float64bits(want[i].Upper) {
			t.Errorf("%s: t=%v bounds [%v,%v] differ from [%v,%v] (bit-level)",
				ctx, got[i].T, got[i].Lower, got[i].Upper, want[i].Lower, want[i].Upper)
		}
	}
}

// snapshotScenario is one model/options combination of the equivalence
// matrix.
type snapshotScenario struct {
	name    string
	model   *regenrand.CTMC
	rewards []float64
	copts   regenrand.CompileOptions
	ts      []float64
	extendT float64 // horizon pushed after the snapshot, to test extension
}

func snapshotScenarios(t *testing.T) []snapshotScenario {
	t.Helper()
	opts := regenrand.DefaultOptions()
	// Compact retention needs a coarser ε (the float32 carve-out); see
	// CompileOptions.CompactRetention.
	compactOpts := regenrand.Options{Epsilon: 1e-6, UniformizationFactor: 1}

	avail, err := regenrand.BuildRAID(regenrand.DefaultRAIDParams(20), false)
	if err != nil {
		t.Fatal(err)
	}
	rely, err := regenrand.BuildRAID(regenrand.DefaultRAIDParams(20), true)
	if err != nil {
		t.Fatal(err)
	}
	band, err := ctmc.RandomBand(rand.New(rand.NewSource(42)), ctmc.BandOptions{
		States: 10000, Bandwidth: 8, Degree: 3, Absorbing: 2})
	if err != nil {
		t.Fatal(err)
	}
	bandRewards := ctmc.RandomRewards(rand.New(rand.NewSource(43)), band, 1, false)

	scs := []snapshotScenario{
		{
			name: "fig3_G20_retain", model: avail.Chain, rewards: avail.UnavailabilityRewards(),
			copts:   regenrand.CompileOptions{Options: opts, RegenState: avail.Pristine},
			ts:      []float64{1, 10, 100}, extendT: 1000,
		},
		{
			name: "fig3_G20_noretain", model: avail.Chain, rewards: avail.UnavailabilityRewards(),
			copts:   regenrand.CompileOptions{Options: opts, RegenState: avail.Pristine, DisableRetention: true},
			ts:      []float64{1, 10, 100}, extendT: 1000,
		},
		{
			name: "fig3_G20_compact", model: avail.Chain, rewards: avail.UnavailabilityRewards(),
			copts:   regenrand.CompileOptions{Options: compactOpts, RegenState: avail.Pristine, CompactRetention: true},
			ts:      []float64{1, 10, 100}, extendT: 1000,
		},
		{
			name: "fig3_G20_buckets", model: avail.Chain, rewards: avail.UnavailabilityRewards(),
			copts:   regenrand.CompileOptions{Options: opts, RegenState: avail.Pristine, HorizonBuckets: 4},
			ts:      []float64{1, 10, 100}, extendT: 1000,
		},
		{
			name: "fig4_G20_retain", model: rely.Chain, rewards: rely.UnreliabilityRewards(),
			copts:   regenrand.CompileOptions{Options: opts, RegenState: rely.Pristine},
			ts:      []float64{1, 10, 100}, extendT: 1000,
		},
		{
			name: "fig4_G20_buckets", model: rely.Chain, rewards: rely.UnreliabilityRewards(),
			copts:   regenrand.CompileOptions{Options: opts, RegenState: rely.Pristine, HorizonBuckets: 4},
			ts:      []float64{1, 10, 100}, extendT: 1000,
		},
	}
	// The 10⁴-state scenarios dominate the suite's runtime (slab-heavy
	// snapshots under the race detector); -short keeps the G=20 matrix only.
	if !testing.Short() {
		scs = append(scs,
			snapshotScenario{
				name: "band1e4_retain", model: band, rewards: bandRewards,
				copts:   regenrand.CompileOptions{Options: opts, RegenState: 0},
				ts:      []float64{1, 5}, extendT: 8,
			},
			snapshotScenario{
				name: "band1e4_compact", model: band, rewards: bandRewards,
				copts:   regenrand.CompileOptions{Options: compactOpts, RegenState: 0, CompactRetention: true},
				ts:      []float64{1, 5}, extendT: 8,
			})
	}
	// -short (the CI race job) also stops the G=20 horizons early: the
	// equivalence property only needs extendT past the snapshotted depth,
	// while t=100/1000 horizons multiply the stepping work ~8× under the
	// race detector. Deep horizons stay covered by the full test run and
	// the restart-recovery CI job.
	if testing.Short() {
		for i := range scs {
			scs[i].ts = []float64{1, 5}
			scs[i].extendT = 20
		}
	}
	return scs
}

func queryAll(t *testing.T, cm *regenrand.CompiledModel, sc snapshotScenario, ts []float64) ([]regenrand.Result, []regenrand.Result, []regenrand.Bounds) {
	t.Helper()
	rr, err := cm.Query(regenrand.Query{Method: regenrand.MethodRR, Measure: regenrand.MeasureTRR, Rewards: sc.rewards, Times: ts})
	if err != nil {
		t.Fatalf("%s: RR query: %v", sc.name, err)
	}
	rrl, err := cm.Query(regenrand.Query{Method: regenrand.MethodRRL, Measure: regenrand.MeasureTRR, Rewards: sc.rewards, Times: ts})
	if err != nil {
		t.Fatalf("%s: RRL query: %v", sc.name, err)
	}
	bounds, err := cm.QueryBounds(regenrand.Query{Method: regenrand.MethodRR, Measure: regenrand.MeasureTRR, Rewards: sc.rewards, Times: ts})
	if err != nil {
		t.Fatalf("%s: RR bounds query: %v", sc.name, err)
	}
	return rr, rrl, bounds
}

// Snapshot → load → query must agree bitwise with the never-snapshotted
// compile on the paper's Fig 3/4 G=20 instances and the 10⁴-state band
// model, across retention modes and horizon bucketing — both for a snapshot
// taken at compile time (chains at step 0) and one taken after queries
// deepened the chains, and for queries that push the restored chains past
// their snapshotted depth.
func TestSnapshotQueryEquivalence(t *testing.T) {
	for _, sc := range snapshotScenarios(t) {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			fresh, err := regenrand.Compile(sc.model, sc.copts)
			if err != nil {
				t.Fatal(err)
			}
			cold, err := fresh.Snapshot() // chains at step 0
			if err != nil {
				t.Fatal(err)
			}
			wantRR, wantRRL, wantBounds := queryAll(t, fresh, sc, sc.ts)
			warm, err := fresh.Snapshot() // chains at query depth
			if err != nil {
				t.Fatal(err)
			}
			// Extension reference, computed once: pushing fresh past the
			// warm-snapshot depth here does not perturb the cold/warm
			// comparisons below (their references are already captured).
			extT := []float64{sc.extendT}
			wantExt, _, _ := queryAll(t, fresh, sc, extT)

			for _, tc := range []struct {
				phase string
				data  []byte
			}{{"cold", cold}, {"warm", warm}} {
				loaded, err := regenrand.LoadSnapshot(tc.data)
				if err != nil {
					t.Fatalf("%s load: %v", tc.phase, err)
				}
				if loaded.Key() != fresh.Key() {
					t.Fatalf("%s load: key %.16s… differs from %.16s…", tc.phase, loaded.Key(), fresh.Key())
				}
				gotRR, gotRRL, gotBounds := queryAll(t, loaded, sc, sc.ts)
				bitsEqualResults(t, sc.name+"/"+tc.phase+"/RR", gotRR, wantRR)
				bitsEqualResults(t, sc.name+"/"+tc.phase+"/RRL", gotRRL, wantRRL)
				bitsEqualBounds(t, sc.name+"/"+tc.phase+"/bounds", gotBounds, wantBounds)

				// Extension past the snapshotted depth continues the same
				// deterministic step sequence.
				gotExt, _, _ := queryAll(t, loaded, sc, extT)
				bitsEqualResults(t, sc.name+"/"+tc.phase+"/extend", gotExt, wantExt)
			}
		})
	}
}

// Concurrent queries against a snapshot-loaded model must agree bitwise
// with serial queries against a fresh compile, at GOMAXPROCS 1 and 8 (the
// CI test job runs this under -race).
func TestSnapshotLoadConcurrentQueries(t *testing.T) {
	m, err := regenrand.BuildRAID(regenrand.DefaultRAIDParams(20), false)
	if err != nil {
		t.Fatal(err)
	}
	sc := snapshotScenario{
		name: "fig3_G20", model: m.Chain, rewards: m.UnavailabilityRewards(),
		copts: regenrand.CompileOptions{Options: regenrand.DefaultOptions(), RegenState: m.Pristine},
		ts:    []float64{1, 10, 100},
	}
	if testing.Short() {
		sc.ts = []float64{1, 10} // same trim as snapshotScenarios
	}
	fresh, err := regenrand.Compile(sc.model, sc.copts)
	if err != nil {
		t.Fatal(err)
	}
	wantRR, wantRRL, wantBounds := queryAll(t, fresh, sc, sc.ts)
	data, err := fresh.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{1, 8} {
		t.Run(fmt.Sprintf("gomaxprocs=%d", procs), func(t *testing.T) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
			loaded, err := regenrand.LoadSnapshot(data)
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					gotRR, gotRRL, gotBounds := queryAll(t, loaded, sc, sc.ts)
					bitsEqualResults(t, "concurrent/RR", gotRR, wantRR)
					bitsEqualResults(t, "concurrent/RRL", gotRRL, wantRRL)
					bitsEqualBounds(t, "concurrent/bounds", gotBounds, wantBounds)
				}()
			}
			wg.Wait()
		})
	}
}

// LoadSnapshot must reject a blob whose content does not hash to the key it
// claims — swapped sections, tampered options, or a blob renamed in the
// store cannot masquerade.
func TestLoadSnapshotRejectsKeyMismatch(t *testing.T) {
	model, _ := raidTestModel(t, 1)
	cm, err := regenrand.Compile(model, regenrand.CompileOptions{Options: regenrand.DefaultOptions()})
	if err != nil {
		t.Fatal(err)
	}
	data, err := cm.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Re-encode with a lying key but valid checksums: the claimed key no
	// longer matches the content, so the recomputed-key check must fire.
	s, err := snapshot.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	s.Meta.Key = strings.Repeat("0", len(s.Meta.Key))
	if _, err := regenrand.LoadSnapshot(snapshot.Encode(s)); !errors.Is(err, snapshot.ErrCorrupt) {
		t.Fatalf("LoadSnapshot with a lying key = %v, want ErrCorrupt", err)
	}
	// And an options tamper (different ε ⇒ different key ⇒ mismatch).
	s2, _ := snapshot.Decode(data)
	s2.Meta.Epsilon = 1e-9
	if _, err := regenrand.LoadSnapshot(snapshot.Encode(s2)); !errors.Is(err, snapshot.ErrCorrupt) {
		t.Fatalf("LoadSnapshot with tampered ε = %v, want ErrCorrupt", err)
	}
}

// testStore returns a cache with a fresh Dir store attached and the store.
func testStore(t *testing.T) (*regenrand.CompileCache, *store.Dir) {
	t.Helper()
	dir, err := store.NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := regenrand.NewCompileCache(8)
	c.SetSnapshotStore(dir, nil)
	return c, dir
}

// The cache load-through: a second cache sharing the store must serve the
// model from the snapshot (no recompile), bitwise-identically; a corrupted
// blob must be quarantined and recompiled, and the recompile written back.
func TestCompileCacheSnapshotLoadThrough(t *testing.T) {
	model, ua := raidTestModel(t, 2)
	copts := regenrand.CompileOptions{Options: regenrand.DefaultOptions()}
	q := regenrand.Query{Method: regenrand.MethodRRL, Measure: regenrand.MeasureTRR, Rewards: ua, Times: []float64{1, 10}}

	before := regenrand.ReadEngineStats()
	c1, dir := testStore(t)
	cm1, err := c1.Compile(model, copts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cm1.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	c1.SnapshotWait()
	names, err := dir.List(context.Background())
	if err != nil || len(names) != 1 || names[0] != cm1.Key() {
		t.Fatalf("after write-back List = %v, %v; want [%s]", names, err, cm1.Key())
	}

	// Second cache, same store: load-through, no recompile.
	c2 := regenrand.NewCompileCache(8)
	c2.SetSnapshotStore(dir, nil)
	cm2, err := c2.Compile(model, copts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cm2.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	bitsEqualResults(t, "load-through", got, want)

	// Corrupt the stored blob: a third cache must quarantine it, recompile
	// to bitwise-identical answers, and repopulate the store.
	p := filepath.Join(dir.Path(), cm1.Key())
	blob, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0x40
	if err := os.WriteFile(p, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	c3 := regenrand.NewCompileCache(8)
	c3.SetSnapshotStore(dir, nil)
	cm3, err := c3.Compile(model, copts)
	if err != nil {
		t.Fatalf("compile over a corrupt snapshot: %v", err)
	}
	got3, err := cm3.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	bitsEqualResults(t, "corrupt-fallback", got3, want)
	if _, err := os.Stat(p + ".corrupt"); err != nil {
		t.Fatalf("corrupt snapshot was not quarantined: %v", err)
	}
	c3.SnapshotWait()
	if names, _ := dir.List(context.Background()); len(names) != 1 {
		t.Fatalf("recompile was not written back: List = %v", names)
	}

	after := regenrand.ReadEngineStats()
	if d := after.SnapshotLoads - before.SnapshotLoads; d < 1 {
		t.Errorf("SnapshotLoads advanced by %d, want ≥ 1", d)
	}
	if d := after.SnapshotLoadFailures - before.SnapshotLoadFailures; d < 1 {
		t.Errorf("SnapshotLoadFailures advanced by %d, want ≥ 1", d)
	}
	if d := after.SnapshotWrites - before.SnapshotWrites; d < 2 {
		t.Errorf("SnapshotWrites advanced by %d, want ≥ 2", d)
	}
	if d := after.SnapshotBytesWritten - before.SnapshotBytesWritten; d <= 0 {
		t.Errorf("SnapshotBytesWritten advanced by %d, want > 0", d)
	}
}

// FlushSnapshots captures chains at their post-query depth; WarmStart on a
// fresh cache restores them without recompiling, at the same depth, with
// bitwise-identical answers.
func TestCompileCacheFlushAndWarmStart(t *testing.T) {
	model, ua := raidTestModel(t, 2)
	copts := regenrand.CompileOptions{Options: regenrand.DefaultOptions()}
	q := regenrand.Query{Method: regenrand.MethodRR, Measure: regenrand.MeasureTRR, Rewards: ua, Times: []float64{1, 10, 100}}

	c1, dir := testStore(t)
	cm1, err := c1.Compile(model, copts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cm1.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	written, failed := c1.FlushSnapshots()
	if written != 1 || failed != 0 {
		t.Fatalf("FlushSnapshots = (%d, %d), want (1, 0)", written, failed)
	}

	c2 := regenrand.NewCompileCache(8)
	c2.SetSnapshotStore(dir, nil)
	loaded, lfailed, err := c2.WarmStart(context.Background())
	if err != nil || loaded != 1 || lfailed != 0 {
		t.Fatalf("WarmStart = (%d, %d, %v), want (1, 0, nil)", loaded, lfailed, err)
	}
	cm2, ok := c2.Get(cm1.Key())
	if !ok {
		t.Fatal("warm-started model not in cache")
	}
	if cm2.BuildSteps() != cm1.BuildSteps() {
		t.Fatalf("warm-started chains at %d steps, want %d", cm2.BuildSteps(), cm1.BuildSteps())
	}
	got, err := cm2.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	bitsEqualResults(t, "warm-start", got, want)
}

// Injected faults in the store/decode paths must degrade to recompile, not
// errors or panics.
func TestCompileCacheSnapshotFaultFallback(t *testing.T) {
	model, ua := raidTestModel(t, 2)
	copts := regenrand.CompileOptions{Options: regenrand.DefaultOptions()}
	q := regenrand.Query{Method: regenrand.MethodRR, Measure: regenrand.MeasureTRR, Rewards: ua, Times: []float64{1, 10}}

	c1, dir := testStore(t)
	cm1, err := c1.Compile(model, copts)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cm1.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	c1.SnapshotWait()

	for _, site := range []string{store.FaultRead, snapshot.FaultDecode} {
		t.Run(site, func(t *testing.T) {
			faultpoint.Reset()
			defer faultpoint.Reset()
			faultpoint.Enable(site, faultpoint.Spec{Mode: faultpoint.ModeError, Times: 1})
			c := regenrand.NewCompileCache(8)
			c.SetSnapshotStore(dir, nil)
			cm, err := c.Compile(model, copts)
			if err != nil {
				t.Fatalf("compile under %s fault: %v", site, err)
			}
			got, err := cm.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			bitsEqualResults(t, site, got, want)
			c.SnapshotWait()
		})
	}

	// A write fault only costs durability: compile succeeds, the failure is
	// counted, and the store still holds the (older) blob or none.
	t.Run(store.FaultWrite, func(t *testing.T) {
		faultpoint.Reset()
		defer faultpoint.Reset()
		faultpoint.Enable(store.FaultWrite, faultpoint.Spec{Mode: faultpoint.ModeError, Times: 1})
		before := regenrand.ReadEngineStats()
		c := regenrand.NewCompileCache(8)
		dir2, err := store.NewDir(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		c.SetSnapshotStore(dir2, nil)
		cm, err := c.Compile(model, copts)
		if err != nil {
			t.Fatalf("compile under write fault: %v", err)
		}
		got, err := cm.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		bitsEqualResults(t, "write-fault", got, want)
		c.SnapshotWait()
		after := regenrand.ReadEngineStats()
		if d := after.SnapshotWriteFailures - before.SnapshotWriteFailures; d < 1 {
			t.Errorf("SnapshotWriteFailures advanced by %d, want ≥ 1", d)
		}
	})
}

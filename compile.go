package regenrand

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"regenrand/internal/adaptive"
	"regenrand/internal/cache"
	"regenrand/internal/core"
	"regenrand/internal/ctmc"
	"regenrand/internal/laplace"
	"regenrand/internal/multistep"
	"regenrand/internal/regen"
	"regenrand/internal/rrl"
	"regenrand/internal/sparse"
	"regenrand/internal/ssd"
	"regenrand/internal/uniform"
)

// NoRegen marks a compile without regenerative structure: the compiled
// model then serves the SR/RSD/AU/MS methods but not RR/RRL.
const NoRegen = -1

// CompileOptions configures the compile phase.
type CompileOptions struct {
	// Options carries the solver configuration (ε, randomization factor)
	// every query against the compiled model runs under. The zero value is
	// not valid; use DefaultOptions or set Epsilon explicitly.
	Options Options
	// RegenState is the regenerative state whose series the compile phase
	// builds (the paper uses the fault-free initial state, index 0 — the
	// zero value). Set NoRegen (-1) to skip the regenerative artifacts;
	// other negative values are rejected.
	RegenState int
	// DisableRetention drops the stepped vectors of the regenerative series
	// after compilation. Binding a new reward vector then re-runs the fused
	// stepping pass instead of a sweep of dot products: memory falls from
	// O(states · K) to O(states), queries over already-bound rewards are
	// unaffected. The thin wrapper constructors (NewSR, NewRRL, ...) compile
	// in this mode.
	DisableRetention bool
	// CompactRetention retains the stepped vectors as float32 roundings,
	// halving the compile phase's dominant memory cost (8·states·K →
	// 4·states·K bytes) for large models. Reward bindings then replay dots
	// over the rounded vectors, so RR/RRL results are no longer
	// bitwise-identical to a full-precision compile; the quantization error
	// is bounded by 2⁻²⁴·rmax per coefficient and charged against an
	// explicit slice of the series truncation budget (ε/4 per chain), so
	// every result remains certified within Epsilon. Queries error when
	// Epsilon is too small for that carve-out (roughly Epsilon ≲ 1e-6·rmax);
	// the paper-strength ε = 1e-12 is incompatible with compact retention.
	// Mutually exclusive with DisableRetention; part of the compile content
	// key.
	CompactRetention bool
	// RRL carries the inversion knobs every RRL query against this compiled
	// model runs under: the Laplace backend (RRLConfig.Inverter — "durbin",
	// the paper's configuration and the default, or "euler"; a Query may
	// override it per request), period factor κ, acceleration and
	// tail-truncation ablations. The zero value reproduces the paper. The
	// knobs change query results, so they are part of the compile's content
	// key.
	RRL RRLConfig
	// HorizonBuckets, when positive, turns on horizon bucketing for RR/RRL
	// queries: every query horizon (the max of its times) is rounded UP to
	// the geometric grid 10^(i/HorizonBuckets), so near-miss horizons share
	// one series, one truncation depth, and one grouped stepping pass
	// instead of each building its own. HorizonBuckets is the number of grid
	// points per decade (4 is a reasonable serving default: buckets ~78%
	// apart in time never more than one bucket deeper than needed).
	//
	// Bucketed answers are evaluated at the query's own time points against
	// the bucket's deeper-truncated series, so they remain certified within
	// Epsilon — strictly more accurate than the exact-horizon truncation —
	// but they differ from an unbucketed compile's answers. Hence opt-in,
	// part of the compile content key, and disclosed per row by the serving
	// layer (see CompiledModel.EffectiveHorizon). Negative values are
	// rejected; 0 (the default) disables bucketing.
	HorizonBuckets int
	// PrebuildHorizon, when positive, makes CompileCtx eagerly extend the
	// retained regenerative chains deep enough to certify this horizon (for
	// a unit-rmax proxy) instead of leaving all stepping to the first query.
	// It is pure warmup — queries extend the chains to the same depths on
	// demand and results are identical — so it is NOT part of the compile
	// content key; its purpose is to give a compile request a real,
	// cancellable body of work. Ignored without retained regenerative
	// structure.
	PrebuildHorizon float64
}

// CompiledModel is the immutable, goroutine-safe artifact of the compile
// phase: the uniformized sparse chain with its fused-kernel chunk plan, the
// AU adjacency, and — when a regenerative state was given — the reward-free
// regeneration series with retained step vectors. Reward-dependent layers
// are added as cheap CompiledMeasure views, so one compile serves TRR, MRR,
// availability and reliability measures under many reward vectors; see
// Query and QueryBatch for the evaluation engine.
//
// All methods are safe for concurrent use, and query results are a pure
// function of the request (never of the order requests arrive in), so
// concurrent and serial evaluation of the same queries agree bitwise.
type CompiledModel struct {
	model *ctmc.CTMC
	opts  core.Options
	copts CompileOptions
	key   string

	dtmc  *ctmc.DTMC
	basis *regen.Basis // nil when compiled with NoRegen

	adjOnce sync.Once
	adj     [][]int32 // AU adjacency, built on first AU query

	measures *cache.LRU[string, *CompiledMeasure]
}

// measureCacheCap bounds the number of reward-vector views kept per
// compiled model; eviction only drops cached coefficient bindings, never
// correctness.
const measureCacheCap = 128

// Compile runs the compile phase: it validates the model/options pair,
// uniformizes the generator once, and prepares the shared artifacts every
// query draws on. The expensive regenerative series construction itself is
// lazy — it grows on demand as queries push the certified horizon — but is
// performed at most once per compiled model and shared by every measure
// and every goroutine.
func Compile(model *CTMC, copts CompileOptions) (*CompiledModel, error) {
	return CompileCtx(context.Background(), model, copts)
}

// CompileCtx is Compile under a context: cancellation is observed at the
// chain-stepping checkpoints of the eager warmup (PrebuildHorizon), so a
// caller abandoning a long compile gets back a wrapped context error carrying
// the steps already performed (see core.CancelError). A cancelled compile
// leaves no artifact behind; retrying produces a model bitwise-identical to
// an uncancelled compile, because the chain store is append-only and every
// extension is deterministic.
func CompileCtx(ctx context.Context, model *CTMC, copts CompileOptions) (*CompiledModel, error) {
	opts := copts.Options
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if copts.RegenState < NoRegen {
		return nil, fmt.Errorf("regenrand: regenerative state %d out of range (use NoRegen to compile without one)", copts.RegenState)
	}
	copts.RRL = copts.RRL.Normalize()
	if !(copts.RRL.TFactor >= 1) { // also rejects NaN
		return nil, fmt.Errorf("regenrand: RRL period factor %v < 1", copts.RRL.TFactor)
	}
	if _, err := laplace.ForName(copts.RRL.Inverter); err != nil {
		return nil, fmt.Errorf("regenrand: %w", err)
	}
	if copts.CompactRetention && copts.DisableRetention {
		return nil, fmt.Errorf("regenrand: CompactRetention and DisableRetention are mutually exclusive")
	}
	if copts.HorizonBuckets < 0 {
		return nil, fmt.Errorf("regenrand: HorizonBuckets %d < 0 (0 disables bucketing)", copts.HorizonBuckets)
	}
	copts.Options = opts // normalized, so equivalent compiles share a key
	cm := &CompiledModel{
		model:    model,
		opts:     opts,
		copts:    copts,
		key:      compileKey(model, copts),
		measures: cache.New[string, *CompiledMeasure](measureCacheCap),
	}
	var err error
	if copts.RegenState >= 0 {
		cm.basis, err = regen.NewBasisMode(model, copts.RegenState, opts, copts.retainMode())
		if err != nil {
			return nil, err
		}
		cm.dtmc = cm.basis.DTMC()
	} else {
		cm.dtmc, err = model.Uniformize(opts.UniformizationFactor)
		if err != nil {
			return nil, err
		}
	}
	if cm.basis != nil && copts.PrebuildHorizon > 0 {
		if err := cm.basis.Prewarm(ctx, copts.PrebuildHorizon); err != nil {
			return nil, err
		}
	}
	return cm, nil
}

// compileKey is the content key of a compile: generator fingerprint,
// regeneration state and options. Two Compile calls with equal keys produce
// interchangeable artifacts.
func compileKey(model *CTMC, copts CompileOptions) string {
	fp := model.Fingerprint()
	var tail [43]byte
	binary.LittleEndian.PutUint64(tail[0:8], uint64(int64(copts.RegenState)))
	binary.LittleEndian.PutUint64(tail[8:16], math.Float64bits(copts.Options.Epsilon))
	binary.LittleEndian.PutUint64(tail[16:24], math.Float64bits(copts.Options.UniformizationFactor))
	if copts.DisableRetention {
		tail[24] |= 1
	}
	// Compact retention changes RR/RRL query results (quantized replay), so
	// it must split the cache key.
	if copts.CompactRetention {
		tail[24] |= 2
	}
	binary.LittleEndian.PutUint64(tail[25:33], math.Float64bits(copts.RRL.TFactor))
	if copts.RRL.DisableAcceleration {
		tail[33] |= 1
	}
	if copts.RRL.DisableTailTruncation {
		tail[33] |= 2
	}
	// Horizon bucketing rounds query horizons onto a geometric grid, which
	// changes RR/RRL results, so the grid density splits the key too.
	binary.LittleEndian.PutUint64(tail[34:42], uint64(int64(copts.HorizonBuckets)))
	// The Laplace backend changes RRL results (different sampling and
	// acceleration within the same certified budget), so its stable one-byte
	// ID splits the key: the same model compiled for durbin and for euler
	// occupies two cache entries and two snapshot blobs. compileKey runs
	// after validation, so the fallback byte is unreachable in a stored key.
	if inv, err := laplace.ForName(copts.RRL.Inverter); err == nil {
		tail[42] = inv.ID()
	} else {
		tail[42] = 0xff
	}
	return hex.EncodeToString(fp[:]) + hex.EncodeToString(tail[:])
}

// wrapCtxErr normalizes cancellation surfaced by a cache wait: a raw
// context sentinel (the waiter's own ctx ended while blocked on a
// single-flight construction) is wrapped into the engine's CancelError
// shape; every other error passes through unchanged.
func wrapCtxErr(err error) error {
	if err == nil || !(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		return err
	}
	return core.Cancelled(err, 0, 0)
}

// retainMode maps the option pair onto the regen retention mode.
func (copts CompileOptions) retainMode() regen.RetainMode {
	switch {
	case copts.DisableRetention:
		return regen.RetainNone
	case copts.CompactRetention:
		return regen.RetainCompact
	default:
		return regen.RetainFull
	}
}

// Model returns the compiled generator.
func (cm *CompiledModel) Model() *CTMC { return cm.model }

// Options returns the normalized solver options of the compile.
func (cm *CompiledModel) Options() Options { return cm.opts }

// RRLConfig returns the normalized RRL inversion configuration of the
// compile (the serving layer discloses its Inverter per answer row).
func (cm *CompiledModel) RRLConfig() RRLConfig { return cm.copts.RRL }

// RegenState returns the compiled regenerative state, or NoRegen.
func (cm *CompiledModel) RegenState() int {
	if cm.basis == nil {
		return NoRegen
	}
	return cm.copts.RegenState
}

// Key returns the content key of this compile (the CompileCache key): a hex
// string derived from the generator fingerprint, regeneration state and
// options.
func (cm *CompiledModel) Key() string { return cm.key }

// BuildSteps reports the full-model DTMC steps stored in the shared series
// so far (0 without retained regenerative structure) — the amortized
// construction cost every query reuses.
func (cm *CompiledModel) BuildSteps() int {
	if cm.basis == nil {
		return 0
	}
	return cm.basis.Steps()
}

// RetainedBytes estimates the memory this compiled model pins: the retained
// step vectors of the regenerative chains (the dominant, growing cost), the
// per-measure series stores that grow after compile — cached b(k)
// coefficient bindings and, on non-retaining compiles, each binding's
// incremental chains — plus a fixed baseline for the uniformized sparse
// chain. It is cheap (atomic reads over the live measures), grows as queries
// extend the chains, and feeds the byte-budget eviction of
// NewCompileCacheBytes; evicted measures drop out of the sum, so the
// accounting tracks what is actually held.
func (cm *CompiledModel) RetainedBytes() int64 {
	// Sparse chain baseline: value + column index per nonzero, in CSR-ish
	// in/out copies, plus a few dense state-length vectors.
	base := int64(cm.dtmc.P.NNZ())*24 + int64(cm.model.N())*64
	cm.measures.Each(func(m *CompiledMeasure) {
		if m.binding != nil {
			base += m.binding.RetainedBytes()
		}
	})
	if cm.basis == nil {
		return base
	}
	return base + cm.basis.RetainedBytes()
}

// adjacency returns the shared AU adjacency, built on first use.
func (cm *CompiledModel) adjacency() [][]int32 {
	cm.adjOnce.Do(func() { cm.adj = adaptive.Adjacency(cm.model) })
	return cm.adj
}

// Measure returns the compiled view of one reward vector, creating and
// caching it on first use. Views are cheap: the expensive shared artifacts
// live on the CompiledModel; the view holds the reward binding and the
// per-method evaluation caches.
func (cm *CompiledModel) Measure(rewards []float64) (*CompiledMeasure, error) {
	return cm.measureByKey(rewardsKey(rewards), rewards)
}

// measureByKey is Measure with the rewards content hash precomputed — the
// query planner hashes each request's rewards once and reuses the digest
// for deduplication, grouping and this lookup.
func (cm *CompiledModel) measureByKey(key string, rewards []float64) (*CompiledMeasure, error) {
	return cm.measureByKeyCtx(context.Background(), key, rewards)
}

// measureByKeyCtx is the ctx-aware measure lookup: an abandoning caller
// detaches from the single-flight view construction without killing it for
// concurrent waiters (see cache.GetOrCreateCtx).
func (cm *CompiledModel) measureByKeyCtx(ctx context.Context, key string, rewards []float64) (*CompiledMeasure, error) {
	if _, err := core.CheckRewards(rewards, cm.model.N()); err != nil {
		return nil, err
	}
	m, err := cm.measures.GetOrCreateCtx(ctx, key, func(context.Context) (*CompiledMeasure, error) {
		return cm.newMeasure(rewards)
	})
	if err != nil {
		return nil, wrapCtxErr(err)
	}
	return m, nil
}

// rewardsKey is a content hash of the vector, hashed incrementally so a
// query's measure lookup allocates a fixed 32-byte key regardless of the
// model size (the byte-exact alternative would materialize 8n bytes per
// Query call).
func rewardsKey(rewards []float64) string {
	h := sha256.New()
	var buf [8]byte
	for _, r := range rewards {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(r))
		h.Write(buf[:])
	}
	return string(h.Sum(nil))
}

func (cm *CompiledModel) newMeasure(rewards []float64) (*CompiledMeasure, error) {
	r := make([]float64, len(rewards))
	copy(r, rewards)
	m := &CompiledMeasure{
		cm:      cm,
		rewards: r,
		series:  cache.New[uint64, *regen.Series](16),
		rrEvals: cache.New[klKey, *regen.VEvaluator](8),
		rrlEvs:  cache.New[klKey, *rrl.Evaluator](8),
	}
	if cm.basis != nil {
		bind, err := cm.basis.Bind(r)
		if err != nil {
			return nil, err
		}
		m.binding = bind
	}
	return m, nil
}

// klKey identifies a truncation level pair; for RRL evaluators it also
// carries the effective Laplace backend, so a per-query inverter override
// gets its own cached evaluator instead of mutating the compile default's.
type klKey struct {
	k, l     int
	inverter string
}

// CompiledMeasure is the reward-dependent layer over a CompiledModel: one
// reward vector, its series binding, and per-method evaluation caches.
// Obtain one with CompiledModel.Measure; methods are safe for concurrent
// use.
type CompiledMeasure struct {
	cm      *CompiledModel
	rewards []float64
	binding *regen.Binding // nil when the model compiled with NoRegen

	// series caches the bound series per horizon (keyed by the float bits);
	// rrEvals/rrlEvs cache evaluators per truncation level, so distinct
	// horizons that truncate identically share one artifact.
	series  *cache.LRU[uint64, *regen.Series]
	rrEvals *cache.LRU[klKey, *regen.VEvaluator]
	rrlEvs  *cache.LRU[klKey, *rrl.Evaluator]

	// The shared single-caller solvers each get their own mutex, so queries
	// on one measure serialize per (measure, method) pair, not across
	// methods.
	srMu  sync.Mutex
	sr    *uniform.Solver
	rsdMu sync.Mutex
	rsd   *ssd.Solver
	auMu  sync.Mutex
	au    *adaptive.Solver
}

// Rewards returns the bound reward vector (shared; do not modify).
func (m *CompiledMeasure) Rewards() []float64 { return m.rewards }

// seriesSource exposes the measure's binding as the SeriesSource the
// wrapper solvers consume (nil when compiled with NoRegen — returned as an
// untyped nil so callers can test it).
func (m *CompiledMeasure) seriesSource() regen.SeriesSource {
	if m.binding == nil {
		return nil
	}
	return m.binding
}

// rho0 is π(0)·r̄, the t = 0 shortcut.
func (m *CompiledMeasure) rho0() float64 {
	return sparse.Dot(m.cm.model.Initial(), m.rewards)
}

// seriesFor returns the series certified for the horizon, cached per
// distinct horizon. Results are a pure function of the horizon, so queries
// stay order-independent.
func (m *CompiledMeasure) seriesFor(horizon float64) (*regen.Series, error) {
	return m.seriesForCtx(context.Background(), horizon)
}

// seriesForCtx is seriesFor under a context. The single-flight construction
// runs under a detached context that is cancelled only when every waiter has
// abandoned it, so one impatient query cannot poison the series for others;
// a cancelled construction leaves the append-only chain store holding a
// valid prefix, and the retry extends from there to a bitwise-identical
// series.
func (m *CompiledMeasure) seriesForCtx(ctx context.Context, horizon float64) (*regen.Series, error) {
	if m.binding == nil {
		return nil, fmt.Errorf("regenrand: model was compiled without a regenerative state; RR/RRL queries need CompileOptions.RegenState")
	}
	created := false
	s, err := m.series.GetOrCreateCtx(ctx, math.Float64bits(horizon), func(cctx context.Context) (*regen.Series, error) {
		created = true
		return m.binding.SeriesForCtx(cctx, horizon)
	})
	if err != nil {
		return nil, wrapCtxErr(err)
	}
	// Single-flight: the caller whose closure ran counts the miss; waiters
	// and later callers that found the entry count hits.
	if created {
		seriesMisses.Add(1)
	} else {
		seriesHits.Add(1)
	}
	return s, nil
}

// rrlEvaluator returns the packed-transform evaluator of the series,
// shared across horizons with identical truncation levels. inverter is the
// query-level backend override ("" = the compile's RRL.Inverter); each
// effective backend gets its own cached evaluator.
func (m *CompiledMeasure) rrlEvaluator(s *regen.Series, inverter string) (*rrl.Evaluator, error) {
	conf := m.cm.copts.RRL
	if inverter != "" {
		conf.Inverter = inverter
	}
	return m.rrlEvs.GetOrCreate(klKey{k: s.K, l: s.L, inverter: conf.Inverter}, func() (*rrl.Evaluator, error) {
		return rrl.NewEvaluator(s, m.rho0, m.cm.opts.Epsilon, conf)
	})
}

// rrEvaluator returns the V_{K,L} evaluator of the series.
func (m *CompiledMeasure) rrEvaluator(s *regen.Series) (*regen.VEvaluator, error) {
	return m.rrEvals.GetOrCreate(klKey{k: s.K, l: s.L}, func() (*regen.VEvaluator, error) {
		return regen.NewVEvaluator(s, m.cm.opts)
	})
}

// srSolver returns the shared SR solver of this measure; callers hold
// m.srMu while creating and using it (uniform.Solver is a single-caller
// object whose cached reward sequence is deterministic, so serialized
// access keeps results order-independent).
func (m *CompiledMeasure) srSolver() (*uniform.Solver, error) {
	if m.sr == nil {
		s, err := uniform.NewFromDTMC(m.cm.model, m.cm.dtmc, m.rewards, m.cm.opts)
		if err != nil {
			return nil, err
		}
		m.sr = s
	}
	return m.sr, nil
}

func (m *CompiledMeasure) rsdSolver() (*ssd.Solver, error) {
	if m.rsd == nil {
		s, err := ssd.NewFromDTMC(m.cm.model, m.cm.dtmc, m.rewards, m.cm.opts)
		if err != nil {
			return nil, err
		}
		m.rsd = s
	}
	return m.rsd, nil
}

func (m *CompiledMeasure) auSolver() (*adaptive.Solver, error) {
	if m.au == nil {
		s, err := adaptive.NewShared(m.cm.model, m.rewards, m.cm.opts, m.cm.adjacency())
		if err != nil {
			return nil, err
		}
		m.au = s
	}
	return m.au, nil
}

// CompileCache is an LRU of compiled models keyed by content: repeated
// compiles of the same (generator, regeneration state, options) triple
// return the shared artifact, and concurrent misses compile once. It is the
// artifact cache the serving layer (cmd/regenserve) shares across requests.
type CompileCache struct {
	lru *cache.LRU[string, *CompiledModel]

	// Snapshot load-through/write-back state; see SetSnapshotStore in
	// snapshot.go. snap is nil until a store is attached, so the snapshot
	// machinery costs an atomic load when unused.
	snap   atomic.Pointer[snapshotBackend]
	snapWG sync.WaitGroup
}

// NewCompileCache returns a cache holding at most capacity compiled models.
func NewCompileCache(capacity int) *CompileCache {
	return &CompileCache{lru: cache.New[string, *CompiledModel](capacity)}
}

// NewCompileCacheBytes returns a cache holding at most capacity compiled
// models whose combined retained memory (per CompiledModel.RetainedBytes) is
// additionally kept under maxBytes by evicting least-recently-used models.
// Because chains grow as queries push horizons, sizes are re-read on every
// insertion; the most recently used model is never evicted, so a single
// model larger than the budget still serves. maxBytes <= 0 disables the
// byte budget.
func NewCompileCacheBytes(capacity int, maxBytes int64) *CompileCache {
	c := &CompileCache{lru: cache.New[string, *CompiledModel](capacity)}
	c.lru.SetByteBudget(maxBytes, func(cm *CompiledModel) int64 { return cm.RetainedBytes() })
	return c
}

// Compile returns the cached compiled model for the key of (model, copts),
// compiling on first use.
func (c *CompileCache) Compile(model *CTMC, copts CompileOptions) (*CompiledModel, error) {
	return c.CompileCtx(context.Background(), model, copts)
}

// CompileCtx is Compile under a context. Concurrent misses on one key still
// compile once: the compile runs detached from any single caller's context
// and is cancelled only when every waiter has abandoned it, so one caller's
// deadline cannot poison the artifact for the rest. A compile that does get
// cancelled is removed from the cache, and the next request recompiles from
// scratch to a bitwise-identical artifact.
func (c *CompileCache) CompileCtx(ctx context.Context, model *CTMC, copts CompileOptions) (*CompiledModel, error) {
	opts := copts.Options
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	copts.Options = opts // normalized, so equivalent options share a key
	copts.RRL = copts.RRL.Normalize()
	key := compileKey(model, copts)
	cm, err := c.lru.GetOrCreateCtx(ctx, key, func(cctx context.Context) (*CompiledModel, error) {
		// Load-through: with a snapshot store attached, a cache miss first
		// tries a stored snapshot (decode + verify); a corrupt or missing
		// snapshot falls back to compiling, and the fresh artifact is
		// written back in the background. Either way the answer is bitwise
		// the same — the snapshot path only skips re-deriving it.
		if loaded, ok := c.tryLoadSnapshot(cctx, key); ok {
			return loaded, nil
		}
		built, err := CompileCtx(cctx, model, copts)
		if err == nil {
			c.writeBackAsync(built)
		}
		return built, err
	})
	if err != nil {
		return nil, wrapCtxErr(err)
	}
	return cm, nil
}

// Get returns the cached compiled model with the given content key, if
// present (the serving layer resolves model ids without re-uploading).
func (c *CompileCache) Get(key string) (*CompiledModel, bool) { return c.lru.Get(key) }

// Len returns the number of cached compiled models.
func (c *CompileCache) Len() int { return c.lru.Len() }

// Stats reports the cached model count and their combined retained bytes
// (sizes re-read at call time; see CompiledModel.RetainedBytes).
func (c *CompileCache) Stats() (entries int, bytes int64) { return c.lru.Stats() }

// MS-specific note: multistep solvers cache their dense block keyed by call
// history, so the engine evaluates each MS query on a fresh solver (sharing
// only the DTMC); see msSolver in query.go.
func (m *CompiledMeasure) msSolver(blockSteps int) (*multistep.Solver, error) {
	return multistep.NewFromDTMC(m.cm.model, m.cm.dtmc, m.rewards, blockSteps, m.cm.opts)
}

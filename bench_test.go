// Benchmarks regenerating the paper's evaluation artifacts, one family per
// table and figure (§3). Step counts are attached to the benchmark output
// as custom metrics ("steps"), so the tables can be read off `go test
// -bench` output directly; wall-clock times per operation reproduce the
// CPU-time figures.
//
// By default the sweeps stop at t = 1000 h for the methods whose cost grows
// linearly with t (SR, and RR's V-solution), exactly where the paper's
// crossovers become visible, keeping the default run to a few minutes. Set
// REPRO_FULL=1 to run the complete sweep to t = 10⁵ h for both G = 20 and
// G = 40 (tens of minutes, dominated by SR at Λt ≈ 4.4·10⁶ steps).
package regenrand_test

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"

	"regenrand"
	"regenrand/internal/core"
	"regenrand/internal/ctmc"
	"regenrand/internal/raid"
	"regenrand/internal/regen"
)

var full = os.Getenv("REPRO_FULL") == "1"

func sweepTimes(expensive bool) []float64 {
	if full {
		return []float64{1, 10, 100, 1000, 1e4, 1e5}
	}
	if expensive {
		return []float64{1, 10, 100, 1000}
	}
	return []float64{1, 10, 100, 1000, 1e4, 1e5}
}

func gValues() []int {
	if full {
		return []int{20, 40}
	}
	return []int{20}
}

// Cached models so benchmark setup does not re-run the BFS generator.
var (
	modelMu    sync.Mutex
	modelCache = map[[2]int]*raid.Model{}
)

func raidModel(b *testing.B, g int, absorbing bool) *raid.Model {
	b.Helper()
	modelMu.Lock()
	defer modelMu.Unlock()
	key := [2]int{g, boolToInt(absorbing)}
	if m, ok := modelCache[key]; ok {
		return m
	}
	m, err := raid.Build(raid.DefaultParams(g), absorbing)
	if err != nil {
		b.Fatal(err)
	}
	modelCache[key] = m
	return m
}

func boolToInt(v bool) int {
	if v {
		return 1
	}
	return 0
}

// BenchmarkTable1StepsUA regenerates the RR/RRL column of Table 1: the
// series-construction cost for the UA measure, with the per-t step count
// reported as the "steps" metric.
func BenchmarkTable1StepsUA(b *testing.B) {
	for _, g := range gValues() {
		m := raidModel(b, g, false)
		rewards := m.UnavailabilityRewards()
		for _, t := range sweepTimes(false) {
			b.Run(fmt.Sprintf("G=%d/t=%g", g, t), func(b *testing.B) {
				var steps int
				for i := 0; i < b.N; i++ {
					series, err := regen.Build(m.Chain, rewards, m.Pristine, core.DefaultOptions(), t)
					if err != nil {
						b.Fatal(err)
					}
					steps = series.Steps()
				}
				b.ReportMetric(float64(steps), "steps")
			})
		}
	}
}

// BenchmarkTable1StepsUARSD regenerates the RSD column of Table 1: the
// detection-limited stepping cost for UA.
func BenchmarkTable1StepsUARSD(b *testing.B) {
	for _, g := range gValues() {
		m := raidModel(b, g, false)
		rewards := m.UnavailabilityRewards()
		for _, t := range sweepTimes(false) {
			b.Run(fmt.Sprintf("G=%d/t=%g", g, t), func(b *testing.B) {
				var steps int
				for i := 0; i < b.N; i++ {
					s, err := regenrand.NewRSD(m.Chain, rewards, regenrand.DefaultOptions())
					if err != nil {
						b.Fatal(err)
					}
					res, err := s.TRR([]float64{t})
					if err != nil {
						b.Fatal(err)
					}
					steps = res[0].Steps
				}
				b.ReportMetric(float64(steps), "steps")
			})
		}
	}
}

// BenchmarkFig3UA regenerates Figure 3: per-(method, t) solution times for
// the UA measure (RRL vs RR vs RSD).
func BenchmarkFig3UA(b *testing.B) {
	for _, g := range gValues() {
		m := raidModel(b, g, false)
		rewards := m.UnavailabilityRewards()
		for _, method := range []string{"RRL", "RR", "RSD"} {
			expensive := method == "RR"
			for _, t := range sweepTimes(expensive) {
				b.Run(fmt.Sprintf("G=%d/%s/t=%g", g, method, t), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						s := newSolverBench(b, method, m, rewards)
						if _, err := s.TRR([]float64{t}); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkTable2StepsUR regenerates the RR/RRL column of Table 2 (UR
// measure on the absorbing model).
func BenchmarkTable2StepsUR(b *testing.B) {
	for _, g := range gValues() {
		m := raidModel(b, g, true)
		rewards := m.UnreliabilityRewards()
		for _, t := range sweepTimes(false) {
			b.Run(fmt.Sprintf("G=%d/t=%g", g, t), func(b *testing.B) {
				var steps int
				for i := 0; i < b.N; i++ {
					series, err := regen.Build(m.Chain, rewards, m.Pristine, core.DefaultOptions(), t)
					if err != nil {
						b.Fatal(err)
					}
					steps = series.Steps()
				}
				b.ReportMetric(float64(steps), "steps")
			})
		}
	}
}

// BenchmarkFig4UR regenerates Figure 4: per-(method, t) solution times for
// the UR measure (RRL vs RR vs SR).
func BenchmarkFig4UR(b *testing.B) {
	for _, g := range gValues() {
		m := raidModel(b, g, true)
		rewards := m.UnreliabilityRewards()
		for _, method := range []string{"RRL", "RR", "SR"} {
			expensive := method == "RR" || method == "SR"
			for _, t := range sweepTimes(expensive) {
				b.Run(fmt.Sprintf("G=%d/%s/t=%g", g, method, t), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						s := newSolverBench(b, method, m, rewards)
						if _, err := s.TRR([]float64{t}); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

func newSolverBench(b *testing.B, method string, m *raid.Model, rewards []float64) regenrand.Solver {
	b.Helper()
	var s regenrand.Solver
	var err error
	switch method {
	case "SR":
		s, err = regenrand.NewSR(m.Chain, rewards, regenrand.DefaultOptions())
	case "RSD":
		s, err = regenrand.NewRSD(m.Chain, rewards, regenrand.DefaultOptions())
	case "RR":
		s, err = regenrand.NewRR(m.Chain, rewards, m.Pristine, regenrand.DefaultOptions())
	case "RRL":
		s, err = regenrand.NewRRL(m.Chain, rewards, m.Pristine, regenrand.DefaultOptions())
	default:
		b.Fatalf("unknown method %s", method)
	}
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkAblationTFactor regenerates the §2.2 design study: inversion
// cost as the period factor κ (T = κt) sweeps from Crump's 1 to Piessens'
// 16, with the abscissa count as a metric.
func BenchmarkAblationTFactor(b *testing.B) {
	m := raidModel(b, 20, true)
	rewards := m.UnreliabilityRewards()
	for _, kappa := range []float64{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("kappa=%g", kappa), func(b *testing.B) {
			var absc int
			for i := 0; i < b.N; i++ {
				s, err := regenrand.NewRRLWithConfig(m.Chain, rewards, m.Pristine,
					regenrand.DefaultOptions(), regenrand.RRLConfig{TFactor: kappa})
				if err != nil {
					b.Fatal(err)
				}
				res, err := s.TRR([]float64{1000})
				if err != nil {
					b.Fatal(err)
				}
				absc = res[0].Abscissae
			}
			b.ReportMetric(float64(absc), "abscissae")
		})
	}
}

// BenchmarkAblationAcceleration measures the epsilon-algorithm ablation at
// a tolerance where the raw series still converges (the paper-strength
// ε=1e-12 setting does not converge at all without acceleration, which is
// the stronger statement made by TestAccelerationAblation).
func BenchmarkAblationAcceleration(b *testing.B) {
	m := raidModel(b, 20, true)
	rewards := m.UnreliabilityRewards()
	opts := regenrand.DefaultOptions()
	opts.Epsilon = 1e-6
	for _, accel := range []bool{true, false} {
		b.Run(fmt.Sprintf("accelerate=%v", accel), func(b *testing.B) {
			var absc int
			for i := 0; i < b.N; i++ {
				s, err := regenrand.NewRRLWithConfig(m.Chain, rewards, m.Pristine, opts,
					regenrand.RRLConfig{DisableAcceleration: !accel})
				if err != nil {
					b.Fatal(err)
				}
				res, err := s.TRR([]float64{1000})
				if err != nil {
					b.Skip("raw series did not converge (expected at tight tolerances):", err)
				}
				absc = res[0].Abscissae
			}
			b.ReportMetric(float64(absc), "abscissae")
		})
	}
}

// BenchmarkExtensionAU measures adaptive uniformization (the §1
// related-work method) against the mission times where it shines, with its
// step count as a metric (compare the SR rows of BenchmarkFig4UR).
func BenchmarkExtensionAU(b *testing.B) {
	m := raidModel(b, 20, true)
	rewards := m.UnreliabilityRewards()
	for _, t := range []float64{0.1, 1, 10, 100} {
		b.Run(fmt.Sprintf("t=%g", t), func(b *testing.B) {
			var steps int
			for i := 0; i < b.N; i++ {
				s, err := regenrand.NewAU(m.Chain, rewards, regenrand.DefaultOptions())
				if err != nil {
					b.Fatal(err)
				}
				res, err := s.TRR([]float64{t})
				if err != nil {
					b.Fatal(err)
				}
				steps = res[0].Steps
			}
			b.ReportMetric(float64(steps), "steps")
		})
	}
}

// rrlBatchTimes is the 16-point sweep of the RRL batch benchmarks.
var rrlBatchTimes = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 1e4, 2e4, 5e4, 1e5}

// reportAbscissae attaches the per-op abscissa count, the per-time-point
// average (the stopping-rule efficiency a backend buys — fewer transform
// evaluations per inverted point), and the abscissae-per-second throughput
// (the transform-evaluation rate the blocked kernels are optimized for) to
// the benchmark output.
func reportAbscissae(b *testing.B, perOp, points int) {
	b.Helper()
	b.ReportMetric(float64(perOp), "abscissae")
	if points > 0 {
		b.ReportMetric(float64(perOp)/float64(points), "abscissae/timepoint")
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(perOp)*float64(b.N)/sec, "abscissae/s")
	}
}

// BenchmarkRRLBatch measures a multi-time-point RRL sweep on one solver:
// the series is built once for the largest horizon and the independent
// per-t inversions fan out over the worker pool, so this row is the one
// that scales with cores (each t is an independent Durbin series).
func BenchmarkRRLBatch(b *testing.B) {
	m := raidModel(b, 20, false)
	rewards := m.UnavailabilityRewards()
	ts := rrlBatchTimes
	for _, measure := range []string{"TRR", "MRR"} {
		b.Run(measure, func(b *testing.B) {
			s, err := regenrand.NewRRL(m.Chain, rewards, m.Pristine, regenrand.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			// Build the series outside the timed loop: the batch fan-out is
			// what this benchmark isolates.
			if _, err := s.TRR(ts[len(ts)-1:]); err != nil {
				b.Fatal(err)
			}
			var absc int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var res []regenrand.Result
				var err error
				if measure == "TRR" {
					res, err = s.TRR(ts)
				} else {
					res, err = s.MRR(ts)
				}
				if err != nil {
					b.Fatal(err)
				}
				absc = 0
				for _, r := range res {
					absc += r.Abscissae
				}
			}
			reportAbscissae(b, absc, len(ts))
		})
	}
}

// BenchmarkRRLBoundsBatch measures the certified-bounds sweep over the same
// 16 time points: the fused path inverts the value and truncation-mass
// transforms jointly at shared abscissae, so this row should cost barely
// more than the corresponding BenchmarkRRLBatch row (it was ~2× before the
// fusion, one full inversion per transform).
func BenchmarkRRLBoundsBatch(b *testing.B) {
	m := raidModel(b, 20, false)
	rewards := m.UnavailabilityRewards()
	ts := rrlBatchTimes
	for _, measure := range []string{"TRR", "MRR"} {
		b.Run(measure, func(b *testing.B) {
			s, err := regenrand.NewRRL(m.Chain, rewards, m.Pristine, regenrand.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			bs, ok := s.(regenrand.BoundingSolver)
			if !ok {
				b.Fatal("RRL solver does not produce bounds")
			}
			stats, ok := s.(interface{ Stats() regenrand.Stats })
			if !ok {
				b.Fatal("RRL solver does not report stats")
			}
			if _, err := s.TRR(ts[len(ts)-1:]); err != nil {
				b.Fatal(err)
			}
			before := stats.Stats().Abscissae
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				if measure == "TRR" {
					_, err = bs.TRRBounds(ts)
				} else {
					_, err = bs.MRRBounds(ts)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
			reportAbscissae(b, (stats.Stats().Abscissae-before)/b.N, len(ts))
		})
	}
}

// BenchmarkRRLInverter compares the Laplace inversion backends on the
// BenchmarkRRLBoundsBatch workload at ε=1e-6, the loosest common budget
// (euler's certified roundoff floor rejects the paper's 1e-12): a 16-point
// certified-bounds sweep per op, with the per-op abscissa count, the
// per-time-point average, and the evaluation rate as metrics. Euler's
// fixed-order binomial averaging over the exactly-alternating T=t series
// needs fewer trailing terms than the ε-algorithm's streak rule on the
// κ=8 discretization, so the euler rows should show lower
// abscissae/timepoint at equal certification.
func BenchmarkRRLInverter(b *testing.B) {
	m := raidModel(b, 20, false)
	rewards := m.UnavailabilityRewards()
	opts := regenrand.DefaultOptions()
	opts.Epsilon = 1e-6
	ts := rrlBatchTimes
	for _, inv := range []string{"durbin", "euler"} {
		for _, measure := range []string{"TRR", "MRR"} {
			b.Run(fmt.Sprintf("inverter=%s/%s", inv, measure), func(b *testing.B) {
				s, err := regenrand.NewRRLWithConfig(m.Chain, rewards, m.Pristine, opts,
					regenrand.RRLConfig{Inverter: inv})
				if err != nil {
					b.Fatal(err)
				}
				bs, ok := s.(regenrand.BoundingSolver)
				if !ok {
					b.Fatal("RRL solver does not produce bounds")
				}
				stats, ok := s.(interface{ Stats() regenrand.Stats })
				if !ok {
					b.Fatal("RRL solver does not report stats")
				}
				if _, err := s.TRR(ts[len(ts)-1:]); err != nil {
					b.Fatal(err)
				}
				before := stats.Stats().Abscissae
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var err error
					if measure == "TRR" {
						_, err = bs.TRRBounds(ts)
					} else {
						_, err = bs.MRRBounds(ts)
					}
					if err != nil {
						b.Fatal(err)
					}
				}
				reportAbscissae(b, (stats.Stats().Abscissae-before)/b.N, len(ts))
			})
		}
	}
}

// BenchmarkCompileQueryReuse quantifies the compile/query split on the
// G=20 RAID availability model: the classic construct-and-solve path pays
// the uniformization and the full series stepping per solver, while a
// second query against an already-compiled model pays only coefficient
// binding (new rewards) or transform inversion (new time batch). The
// acceptance target is ≥5× for the compiled second query over the classic
// path.
func BenchmarkCompileQueryReuse(b *testing.B) {
	m := raidModel(b, 20, false)
	rewards := m.UnavailabilityRewards()
	opts := regenrand.DefaultOptions()
	ts := []float64{1, 10, 100, 1000}

	// freshRewards returns a distinct performability-style vector per call,
	// so the rebinding benchmarks never hit the measure cache. The maximum
	// reward is pinned at 1 so every binding certifies the same truncation
	// level — the steady state of a server rotating reward structures of one
	// scale — rather than re-extending the shared series every iteration.
	iter := 0
	freshRewards := func() []float64 {
		iter++
		salt := iter
		return regenrand.RewardsFrom(m.Chain.N(), func(i int) float64 {
			return float64((i*31+salt)%8) / 7
		})
	}

	b.Run("classic-construct-and-solve", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s, err := regenrand.NewRRL(m.Chain, rewards, m.Pristine, opts)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.TRR(ts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compiled-new-time-batch", func(b *testing.B) {
		cm, err := regenrand.Compile(m.Chain, regenrand.CompileOptions{Options: opts, RegenState: m.Pristine})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cm.Query(regenrand.Query{Rewards: rewards, Times: ts}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tsi := []float64{0.5 + float64(i%7), 40 + float64(i%13), 1000}
			if _, err := cm.Query(regenrand.Query{Rewards: rewards, Times: tsi}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compiled-new-rewards", func(b *testing.B) {
		cm, err := regenrand.Compile(m.Chain, regenrand.CompileOptions{Options: opts, RegenState: m.Pristine})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cm.Query(regenrand.Query{Rewards: freshRewards(), Times: ts}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cm.Query(regenrand.Query{Rewards: freshRewards(), Times: ts}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("classic-new-rewards", func(b *testing.B) {
		// The old path for a new rewards vector: a fresh solver and a fresh
		// series build every time.
		for i := 0; i < b.N; i++ {
			s, err := regenrand.NewRRL(m.Chain, freshRewards(), m.Pristine, opts)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.TRR(ts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCompileColdStart measures the construct-and-solve path end to
// end — the first query against a model nobody compiled before — on the
// paper's G=20 and G=40 RAID instances and on a ~10⁴-state random banded
// model (deep BFS diameter, the regime reachability-frontier pruning is
// built for). The "steps/s" metric is the full-model DTMC stepping
// throughput of the series construction, the quantity Tables 1–2 count;
// "steps" is the per-build step count. The nofrontier variants re-run the
// banded model with frontier pruning disabled — the early-step pruning win
// is their ratio.
func BenchmarkCompileColdStart(b *testing.B) {
	type scenario struct {
		name    string
		model   *regenrand.CTMC
		rewards []float64
		regen   int
		t       float64
	}
	var scenarios []scenario
	for _, g := range []int{20, 40} {
		m := raidModel(b, g, false)
		scenarios = append(scenarios, scenario{
			name:    fmt.Sprintf("model=G%d/t=1000", g),
			model:   m.Chain,
			rewards: m.UnavailabilityRewards(),
			regen:   m.Pristine,
			t:       1000,
		})
	}
	band, err := ctmc.RandomBand(rand.New(rand.NewSource(42)), ctmc.BandOptions{States: 10000, Bandwidth: 8, Degree: 3, Absorbing: 2})
	if err != nil {
		b.Fatal(err)
	}
	bandRewards := ctmc.RandomRewards(rand.New(rand.NewSource(43)), band, 1, false)
	// Two horizons: t=5 stays inside the frontier growth phase (K ≪ BFS
	// diameter ≈ 1250), t=100 runs well past saturation.
	scenarios = append(scenarios,
		scenario{name: "model=band1e4/t=5", model: band, rewards: bandRewards, regen: 0, t: 5},
		scenario{name: "model=band1e4/t=100", model: band, rewards: bandRewards, regen: 0, t: 100},
	)
	run := func(b *testing.B, sc scenario) {
		var steps int
		for i := 0; i < b.N; i++ {
			s, err := regenrand.NewRRL(sc.model, sc.rewards, sc.regen, regenrand.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.TRR([]float64{sc.t}); err != nil {
				b.Fatal(err)
			}
			steps = s.(interface{ Stats() regenrand.Stats }).Stats().BuildSteps
		}
		b.ReportMetric(float64(steps), "steps")
		if sec := b.Elapsed().Seconds(); sec > 0 {
			b.ReportMetric(float64(steps)*float64(b.N)/sec, "steps/s")
		}
	}
	for _, sc := range scenarios {
		b.Run(sc.name, func(b *testing.B) { run(b, sc) })
	}
	for _, sc := range scenarios[2:] {
		b.Run(sc.name+"/nofrontier", func(b *testing.B) {
			prev := regen.SetDisableFrontier(true)
			defer regen.SetDisableFrontier(prev)
			run(b, sc)
		})
	}
}

// BenchmarkQueryPlanner measures the query planner's grouped multi-lane
// serving path on a non-retaining G=20 compiled model: R distinct
// same-horizon RRL measures per batch, evaluated grouped (QueryBatch plans
// them onto one multi-lane stepping pass) versus ungrouped (the per-query
// serial loop, which re-steps the series once per measure — the PR 4
// serving economics). Fresh reward vectors every iteration keep the series
// caches cold, so each op pays the construction its variant actually needs.
// "lanes/s" is measures solved per second — the batch-serving throughput
// the planner exists for.
func BenchmarkQueryPlanner(b *testing.B) {
	m := raidModel(b, 20, false)
	n := m.Chain.N()
	opts := regenrand.DefaultOptions()
	ts := []float64{1, 10, 100, 1000}
	// Every batch gets genuinely fresh reward vectors (a multiplicative hash
	// of a monotone salt: no two salts below 2^20 repeat a vector), so
	// neither variant ever hits a warm measure or series cache; values stay
	// in [0, 1], keeping every binding at the same truncation scale.
	salt := 0
	freshBatch := func(measures int) []regenrand.Query {
		qs := make([]regenrand.Query, measures)
		for k := range qs {
			salt++
			s := salt
			qs[k] = regenrand.Query{
				Method: regenrand.MethodRRL,
				Rewards: regenrand.RewardsFrom(n, func(j int) float64 {
					return float64(((j+s)*2654435761)%(1<<20)) / float64(1<<20-1)
				}),
				Times: ts,
			}
		}
		return qs
	}
	for _, measures := range []int{1, 8, 32} {
		for _, variant := range []string{"grouped", "ungrouped"} {
			b.Run(fmt.Sprintf("measures=%d/%s", measures, variant), func(b *testing.B) {
				cm, err := regenrand.Compile(m.Chain, regenrand.CompileOptions{
					Options: opts, RegenState: m.Pristine, DisableRetention: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					qs := freshBatch(measures)
					if variant == "grouped" {
						for _, qr := range cm.QueryBatch(qs) {
							if qr.Err != nil {
								b.Fatal(qr.Err)
							}
						}
					} else {
						for _, q := range qs {
							if _, err := cm.Query(q); err != nil {
								b.Fatal(err)
							}
						}
					}
				}
				b.ReportMetric(float64(measures), "lanes")
				if sec := b.Elapsed().Seconds(); sec > 0 {
					b.ReportMetric(float64(measures)*float64(b.N)/sec, "lanes/s")
				}
			})
		}
	}
}

// BenchmarkNearMissHorizons measures horizon bucketing's serving win: 32
// distinct-measure RRL queries whose horizons are uniform in [t, 1.5t] —
// realistic traffic that never repeats a horizon bit-for-bit. Exact-bit
// grouping (the PR 5 planner without bucketing) sees 32 singleton horizon
// classes and runs 32 separate series constructions; with HorizonBuckets=4
// the whole spread collapses onto one geometric grid point and rides one
// 32-lane stepping pass. The samehorizon variant (every query at exactly
// 1.5t) is the ideal-traffic reference: bucketed near-miss traffic should
// price like it. Fresh reward vectors per iteration keep every cache cold,
// so each op pays the construction its grouping actually achieves.
// "lanes/s" is measures solved per second; acceptance is bucketed ≥ 3×
// exact.
func BenchmarkNearMissHorizons(b *testing.B) {
	m := raidModel(b, 20, false)
	n := m.Chain.N()
	opts := regenrand.DefaultOptions()
	const queries = 32
	const t0 = 100.0
	// Deterministic pseudo-uniform horizons in [t0, 1.5·t0]: a multiplicative
	// hash gives 32 distinct fractions, so no two queries share horizon bits.
	horizons := make([]float64, queries)
	for k := range horizons {
		frac := float64(((k+1)*2654435761)%(1<<20)) / float64(1<<20)
		horizons[k] = t0 * (1 + 0.5*frac)
	}
	salt := 0
	freshBatch := func(sameHorizon bool) []regenrand.Query {
		qs := make([]regenrand.Query, queries)
		for k := range qs {
			salt++
			s := salt
			tq := horizons[k]
			if sameHorizon {
				tq = 1.5 * t0
			}
			qs[k] = regenrand.Query{
				Method: regenrand.MethodRRL,
				Rewards: regenrand.RewardsFrom(n, func(j int) float64 {
					return float64(((j+s)*2654435761)%(1<<20)) / float64(1<<20-1)
				}),
				Times: []float64{tq},
			}
		}
		return qs
	}
	for _, variant := range []struct {
		name    string
		buckets int
		same    bool
	}{
		{"grouping=exact", 0, false},
		{"grouping=bucketed", 4, false},
		{"grouping=samehorizon", 0, true},
	} {
		b.Run(variant.name, func(b *testing.B) {
			cm, err := regenrand.Compile(m.Chain, regenrand.CompileOptions{
				Options: opts, RegenState: m.Pristine,
				DisableRetention: true, HorizonBuckets: variant.buckets,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				qs := freshBatch(variant.same)
				for _, qr := range cm.QueryBatch(qs) {
					if qr.Err != nil {
						b.Fatal(qr.Err)
					}
				}
			}
			b.ReportMetric(float64(queries), "lanes")
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(queries)*float64(b.N)/sec, "lanes/s")
			}
		})
	}
}

// BenchmarkCompileRetention isolates the compile-phase retention cost on
// the G=20 model: a full compile plus one t=1000 RRL query, with the
// retained series as the dominant allocation. The compact (float32) mode
// should halve B/op versus full retention; ε = 1e-6 gives the quantization
// carve-out room to certify (compact retention rejects the paper's 1e-12).
func BenchmarkCompileRetention(b *testing.B) {
	m := raidModel(b, 20, false)
	rewards := m.UnavailabilityRewards()
	opts := regenrand.DefaultOptions()
	opts.Epsilon = 1e-6
	for _, mode := range []string{"full", "compact"} {
		b.Run("mode="+mode, func(b *testing.B) {
			var steps int
			for i := 0; i < b.N; i++ {
				cm, err := regenrand.Compile(m.Chain, regenrand.CompileOptions{
					Options: opts, RegenState: m.Pristine, CompactRetention: mode == "compact",
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := cm.Query(regenrand.Query{Rewards: rewards, Times: []float64{1000}}); err != nil {
					b.Fatal(err)
				}
				steps = cm.BuildSteps()
			}
			b.ReportMetric(float64(steps), "steps")
		})
	}
}

// BenchmarkKernelStepFused measures the fused stepping kernel (product +
// ℓ₁ mass + reward dot in one pass) against the three-pass composition it
// replaced; compare with BenchmarkKernelVecMat, which is the product alone.
// The stochastic step conserves mass, so the iterated vector stays in the
// normal floating-point range (no zeroing here — a zeroed regenerative
// state would decay the vector into denormals and poison the timing).
func BenchmarkKernelStepFused(b *testing.B) {
	m := raidModel(b, 20, false)
	d, err := m.Chain.Uniformize(1)
	if err != nil {
		b.Fatal(err)
	}
	rewards := m.UnavailabilityRewards()
	src := m.Chain.Initial()
	dst := make([]float64, m.Chain.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.StepFused(dst, src, rewards, nil, nil)
		src, dst = dst, src
	}
	b.ReportMetric(float64(m.Chain.NumTransitions()), "nnz")
}

// BenchmarkKernelVecMat measures the hot sparse kernel on the G=20 RAID
// DTMC, the operation whose count the paper's step tables tally.
func BenchmarkKernelVecMat(b *testing.B) {
	m := raidModel(b, 20, false)
	d, err := m.Chain.Uniformize(1)
	if err != nil {
		b.Fatal(err)
	}
	src := m.Chain.Initial()
	dst := make([]float64, m.Chain.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Step(dst, src)
		src, dst = dst, src
	}
	b.ReportMetric(float64(m.Chain.NumTransitions()), "nnz")
}

// BenchmarkSnapshotLoad measures warm-restart economics. Both arms end in
// the same ready-to-serve state — a compiled model whose retained chains
// certify the scenario horizon: the /load arm gets there by LoadSnapshot
// over snapshot bytes (decode + per-section checksums + content-key
// recompute over the rebuilt model + chain cross-validation + aligned
// zero-copy slab restore); the /recompile arm by a cold Compile with
// PrebuildHorizon (generator analysis + the full series re-stepping the
// snapshot carries). Their ratio is the restart win durable snapshots buy.
//
// The two models bracket the regimes: the 10⁴-state band model is the
// verification-bound worst case (shallow chains over a wide state space —
// loading must stream the whole slab from memory while recompiling re-steps
// a sparse ~3n-nonzero operator per row), and the paper's G=20 RAID
// instance at t=1000 is the stepping-bound regime real dependability models
// live in (deep chains, compute-heavy steps). compact halves the slab via
// float32 retention, roughly doubling the load-side win at equal stepping
// cost. "bytes" on the /load arms is the snapshot blob size.
func BenchmarkSnapshotLoad(b *testing.B) {
	band, err := ctmc.RandomBand(rand.New(rand.NewSource(42)), ctmc.BandOptions{States: 10000, Bandwidth: 8, Degree: 3, Absorbing: 2})
	if err != nil {
		b.Fatal(err)
	}
	raid := raidModel(b, 20, false)
	type scenario struct {
		name    string
		model   *regenrand.CTMC
		regen   int
		horizon float64
		compact bool
	}
	scenarios := []scenario{
		{"model=band1e4/t=100/retain=full", band, 0, 100, false},
		{"model=band1e4/t=100/retain=compact", band, 0, 100, true},
		{"model=G20/t=1000/retain=full", raid.Chain, raid.Pristine, 1000, false},
		{"model=G20/t=1000/retain=compact", raid.Chain, raid.Pristine, 1000, true},
	}
	for _, sc := range scenarios {
		opts := regenrand.DefaultOptions()
		if sc.compact {
			// float32 retention needs a truncation budget above the f32
			// round-off floor.
			opts.Epsilon = 1e-6
		}
		copts := regenrand.CompileOptions{
			Options:          opts,
			RegenState:       sc.regen,
			CompactRetention: sc.compact,
			PrebuildHorizon:  sc.horizon,
		}
		seed, err := regenrand.Compile(sc.model, copts)
		if err != nil {
			b.Fatal(err)
		}
		data, err := seed.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		b.Run(sc.name+"/load", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := regenrand.LoadSnapshot(data); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(data)), "bytes")
		})
		b.Run(sc.name+"/recompile", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := regenrand.Compile(sc.model, copts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

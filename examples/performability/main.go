// Performability: beyond 0/1 dependability measures, the framework of the
// paper handles arbitrary non-negative reward rates. This example attaches
// a throughput reward structure to the RAID model — each parity group
// serves at 100% when healthy, 60% when a member is unavailable, 50% while
// reconstructing, 0 when the system is down — and computes:
//
//   - TRR(t): the expected relative service capacity at time t, and
//   - MRR(t): the expected average capacity over a mission [0, t]
//     (a performability measure),
//
// then uses them to quantify the value of hot spares by comparing
// configurations with and without spare controllers and disks.
package main

import (
	"flag"
	"fmt"
	"log"

	"regenrand"
)

func main() {
	g := flag.Int("g", 10, "number of parity groups")
	flag.Parse()

	ts := []float64{10, 100, 1000, 1e4}

	type config struct {
		name   string
		ch, dh int
	}
	configs := []config{
		{"no spares", 0, 0},
		{"disks only (D_H=3)", 0, 3},
		{"paper config (C_H=1, D_H=3)", 1, 3},
	}
	fmt.Printf("Expected average relative throughput over [0,t] (G=%d):\n\n", *g)
	fmt.Printf("%-30s", "configuration")
	for _, t := range ts {
		fmt.Printf(" %12.0fh", t)
	}
	fmt.Println()
	for _, cfg := range configs {
		params := regenrand.DefaultRAIDParams(*g)
		params.CH, params.DH = cfg.ch, cfg.dh
		model, err := regenrand.BuildRAID(params, false)
		if err != nil {
			log.Fatal(err)
		}
		rewards := model.ThroughputRewards()
		solver, err := regenrand.NewRRL(model.Chain, rewards, model.Pristine, regenrand.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		res, err := solver.MRR(ts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-30s", cfg.name)
		for i := range ts {
			fmt.Printf(" %13.9f", res[i].Value)
		}
		fmt.Println()
	}

	// Instantaneous capacity curve for the paper configuration.
	params := regenrand.DefaultRAIDParams(*g)
	model, err := regenrand.BuildRAID(params, false)
	if err != nil {
		log.Fatal(err)
	}
	solver, err := regenrand.NewRRL(model.Chain, model.ThroughputRewards(), model.Pristine, regenrand.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	res, err := solver.TRR(ts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nExpected instantaneous capacity TRR(t), paper config:")
	for i, t := range ts {
		fmt.Printf("  t=%-8.0f %.9f\n", t, res[i].Value)
	}
}

// RAID unreliability: the paper's second experiment (Table 2 / Figure 4).
//
// Builds the RAID model with the system-failed state made absorbing and
// computes the unreliability UR(t) = P[system fails within t] with RRL,
// cross-checked against standard randomization at the shorter mission
// times. Also derives the mission-time profile a designer actually wants:
// the largest mission time sustaining a target reliability.
package main

import (
	"flag"
	"fmt"
	"log"

	"regenrand"
)

func main() {
	g := flag.Int("g", 20, "number of parity groups (paper: 20 and 40)")
	flag.Parse()

	params := regenrand.DefaultRAIDParams(*g)
	model, err := regenrand.BuildRAID(params, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RAID level-5 unreliability model: G=%d (absorbing failure state)\n", params.G)
	fmt.Printf("states=%d transitions=%d\n\n", model.Chain.N(), model.Chain.NumTransitions())

	rewards := model.UnreliabilityRewards()
	opts := regenrand.DefaultOptions()
	rrl, err := regenrand.NewRRL(model.Chain, rewards, model.Pristine, opts)
	if err != nil {
		log.Fatal(err)
	}
	sr, err := regenrand.NewSR(model.Chain, rewards, opts)
	if err != nil {
		log.Fatal(err)
	}

	ts := []float64{1, 10, 100, 1000, 1e4, 1e5}
	a, err := rrl.TRR(ts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s %-24s %-12s %-10s\n", "t (h)", "UR(t) RRL", "RRL steps", "abscissae")
	for i, t := range ts {
		fmt.Printf("%-10.0f %-24.15e %-12d %-10d\n", t, a[i].Value, a[i].Steps, a[i].Abscissae)
	}

	// Cross-check at moderate t where SR is affordable.
	small := []float64{1, 10, 100, 1000}
	b, err := sr.TRR(small)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nCross-check against SR:")
	for i, t := range small {
		fmt.Printf("  t=%-8.0f RRL-SR = %+.2e (both certified to ε=1e-12)\n", t, a[i].Value-b[i].Value)
	}

	// Designer view: max mission time with UR ≤ target, by bisection on the
	// smooth UR(t) curve (each probe is a cheap RRL evaluation).
	for _, target := range []float64{1e-4, 1e-3, 1e-2} {
		lo, hi := 1.0, 1e5
		for i := 0; i < 40; i++ {
			mid := (lo + hi) / 2
			res, err := rrl.TRR([]float64{mid})
			if err != nil {
				log.Fatal(err)
			}
			if res[0].Value > target {
				hi = mid
			} else {
				lo = mid
			}
		}
		fmt.Printf("max mission time with UR ≤ %.0e: %.1f h\n", target, lo)
	}
}

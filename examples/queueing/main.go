// Queueing performability: the framework applies beyond dependability
// models. This example builds an M/M/1/K queue whose server is subject to
// breakdowns and repairs — the classic performability substrate — and
// computes:
//
//   - the expected throughput at time t (TRR with reward = service rate
//     whenever the server is up and busy),
//   - the expected average throughput over a mission [0, t] (MRR),
//   - certified two-sided bounds on both (the RR/RRL bounding extension),
//   - the transient loss behaviour via the blocking indicator.
//
// States are pairs (n, up) with n ∈ 0..K customers and server up/down.
package main

import (
	"fmt"
	"log"

	"regenrand"
)

const (
	arrival   = 0.8  // customers per unit time
	service   = 1.0  // service rate when up
	breakdown = 0.02 // server failure rate
	repair    = 0.5  // server repair rate
	capacity  = 12   // K
)

// index maps (n, up) to a state number.
func index(n int, up bool) int {
	i := 2 * n
	if !up {
		i++
	}
	return i
}

func main() {
	nStates := 2 * (capacity + 1)
	b := regenrand.NewBuilder(nStates)
	for n := 0; n <= capacity; n++ {
		for _, up := range []bool{true, false} {
			i := index(n, up)
			if n < capacity {
				must(b.AddTransition(i, index(n+1, up), arrival))
			}
			if up {
				if n > 0 {
					must(b.AddTransition(i, index(n-1, true), service))
				}
				must(b.AddTransition(i, index(n, false), breakdown))
			} else {
				must(b.AddTransition(i, index(n, true), repair))
			}
		}
	}
	must(b.SetInitial(index(0, true), 1))
	model, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	if err := regenrand.CheckModelClass(model); err != nil {
		log.Fatal(err)
	}

	// Throughput reward: the server completes work at rate `service` while
	// up and non-empty.
	throughput := regenrand.RewardsFrom(nStates, func(i int) float64 {
		n, up := i/2, i%2 == 0
		if up && n > 0 {
			return service
		}
		return 0
	})
	// Blocking indicator: probability that an arrival would be lost.
	blocked, err := regenrand.IndicatorRewards(nStates, index(capacity, true), index(capacity, false))
	if err != nil {
		log.Fatal(err)
	}

	opts := regenrand.DefaultOptions()
	regenState := index(0, true)
	solver, err := regenrand.NewRRL(model, throughput, regenState, opts)
	if err != nil {
		log.Fatal(err)
	}

	ts := []float64{1, 10, 100, 1000}
	inst, err := solver.TRR(ts)
	must(err)
	avg, err := solver.MRR(ts)
	must(err)

	fmt.Println("M/M/1/12 with server breakdowns: expected throughput")
	fmt.Printf("%-10s %-22s %-22s\n", "t", "instantaneous", "mission average")
	for i, t := range ts {
		fmt.Printf("%-10g %-22.12f %-22.12f\n", t, inst[i].Value, avg[i].Value)
	}

	// Certified enclosures through the BoundingSolver interface.
	bounding, ok := solver.(regenrand.BoundingSolver)
	if !ok {
		log.Fatal("RRL solver should implement BoundingSolver")
	}
	bounds, err := bounding.TRRBounds([]float64{100})
	must(err)
	fmt.Printf("\ncertified enclosure at t=100: [%.15f, %.15f] (width %.2e)\n",
		bounds[0].Lower, bounds[0].Upper, bounds[0].Upper-bounds[0].Lower)

	blockSolver, err := regenrand.NewRRL(model, blocked, regenState, opts)
	must(err)
	loss, err := blockSolver.TRR(ts)
	must(err)
	fmt.Println("\nblocking probability P[queue full]:")
	for i, t := range ts {
		fmt.Printf("  t=%-8g %.12e\n", t, loss[i].Value)
	}

	// Long-run cross-check: the RSD steady-state path must agree with the
	// RRL transient at large t.
	rsd, err := regenrand.NewRSD(model, throughput, opts)
	must(err)
	long, err := rsd.TRR([]float64{1e6})
	must(err)
	fmt.Printf("\nsteady-state throughput (RSD, t=1e6): %.12f\n", long[0].Value)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

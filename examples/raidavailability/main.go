// RAID availability: reproduce the paper's first experiment end to end.
//
// Builds the irreducible level-5 RAID dependability model (G parity groups
// of 5 disks, hot spares, single repairman with controller priority) and
// computes the point unavailability UA(t) and the interval unavailability
// over the paper's mission-time sweep, comparing the RRL and RSD methods —
// the two competitors of Table 1 / Figure 3.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"regenrand"
)

func main() {
	g := flag.Int("g", 20, "number of parity groups (paper: 20 and 40)")
	flag.Parse()

	params := regenrand.DefaultRAIDParams(*g)
	model, err := regenrand.BuildRAID(params, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RAID level-5 availability model: G=%d, N=%d, C_H=%d, D_H=%d\n",
		params.G, params.N, params.CH, params.DH)
	fmt.Printf("states=%d transitions=%d Λ=%.4f/h\n\n",
		model.Chain.N(), model.Chain.NumTransitions(), model.Chain.MaxOutRate())

	rewards := model.UnavailabilityRewards()
	opts := regenrand.DefaultOptions()

	rrl, err := regenrand.NewRRL(model.Chain, rewards, model.Pristine, opts)
	if err != nil {
		log.Fatal(err)
	}
	rsd, err := regenrand.NewRSD(model.Chain, rewards, opts)
	if err != nil {
		log.Fatal(err)
	}

	ts := []float64{1, 10, 100, 1000, 1e4, 1e5}

	start := time.Now()
	a, err := rrl.TRR(ts)
	if err != nil {
		log.Fatal(err)
	}
	rrlTime := time.Since(start)

	start = time.Now()
	b, err := rsd.TRR(ts)
	if err != nil {
		log.Fatal(err)
	}
	rsdTime := time.Since(start)

	fmt.Printf("%-10s %-24s %-24s %10s %10s\n", "t (h)", "UA(t) RRL", "UA(t) RSD", "RRL steps", "RSD steps")
	for i, t := range ts {
		fmt.Printf("%-10.0f %-24.15e %-24.15e %10d %10d\n",
			t, a[i].Value, b[i].Value, a[i].Steps, b[i].Steps)
	}
	fmt.Printf("\nRRL total %v, RSD total %v (both methods agree within ε=1e-12)\n", rrlTime, rsdTime)

	iu, err := rrl.MRR(ts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nInterval unavailability (expected down-time fraction of [0,t]):")
	for i, t := range ts {
		fmt.Printf("  t=%-9.0f %.15e  (expected down time %.3g h)\n", t, iu[i].Value, iu[i].Value*t)
	}
}

// Quickstart: build a small repairable-system CTMC, compute its point
// unavailability UA(t) with the paper's RRL method, and cross-check against
// standard randomization (SR) and the dense matrix-exponential oracle.
//
// The model is a classic 2-component machine-repair system: each of two
// machines fails at rate λ and a single repairman repairs at rate μ; the
// system is "down" when both machines are failed.
package main

import (
	"fmt"
	"log"

	"regenrand"
)

func main() {
	const (
		lambda = 0.01 // failures per hour
		mu     = 0.5  // repairs per hour
	)
	// States: 0 = both up, 1 = one failed, 2 = both failed (system down).
	b := regenrand.NewBuilder(3)
	check(b.AddTransition(0, 1, 2*lambda)) // either machine fails
	check(b.AddTransition(1, 2, lambda))   // the survivor fails
	check(b.AddTransition(1, 0, mu))       // repair
	check(b.AddTransition(2, 1, mu))       // repair (single repairman)
	check(b.SetInitial(0, 1))
	model, err := b.Build()
	check(err)

	// UA(t): reward 1 on the down state.
	rewards := []float64{0, 0, 1}

	opts := regenrand.DefaultOptions() // ε = 1e-12, Λ = max output rate
	rrl, err := regenrand.NewRRL(model, rewards, 0, opts)
	check(err)
	sr, err := regenrand.NewSR(model, rewards, opts)
	check(err)

	ts := []float64{1, 10, 100, 1000, 10000}
	a, err := rrl.TRR(ts)
	check(err)
	c, err := sr.TRR(ts)
	check(err)

	fmt.Println("Point unavailability UA(t) of the 2-machine repair system")
	fmt.Printf("%-10s %-22s %-22s %-22s %s\n", "t (h)", "RRL", "SR", "oracle (expm)", "RRL steps")
	for i, t := range ts {
		oracle, err := regenrand.OracleTRR(model, rewards, t)
		check(err)
		fmt.Printf("%-10.0f %-22.15e %-22.15e %-22.15e %d\n",
			t, a[i].Value, c[i].Value, oracle, a[i].Steps)
	}

	// Interval unavailability: the expected fraction of [0, t] spent down.
	m, err := rrl.MRR(ts)
	check(err)
	fmt.Println("\nInterval unavailability MRR(t)")
	for i, t := range ts {
		fmt.Printf("  t=%-8.0f %.15e\n", t, m[i].Value)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

package regenrand_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"regenrand"
	"regenrand/internal/ctmc"
)

// TestQuickCrossValidation is the end-to-end property test of the paper's
// central claim: on arbitrary models of the admissible class, RRL computes
// the same measures as standard randomization (within combined bounds) and
// as the dense matrix-exponential oracle.
func TestQuickCrossValidation(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		model, err := ctmc.Random(rng, ctmc.RandomOptions{
			States:        4 + rng.Intn(20),
			ExtraDegree:   1 + rng.Intn(3),
			Absorbing:     rng.Intn(3),
			RateSpread:    math.Exp(rng.Float64() * 3), // up to ~20× stiffness
			SpreadInitial: rng.Intn(2) == 0,
		})
		if err != nil {
			return false
		}
		rmax := 1 + 2*rng.Float64()
		rewards := ctmc.RandomRewards(rng, model, rmax, rng.Intn(4) == 0 && len(model.Absorbing()) > 0)
		// The inversion's double-precision floor scales with the series
		// magnitude, i.e. with r_max (see laplace.Options.NoiseRel); over
		// adversarial stiff random models the observed worst case is
		// ~5e-11·r_max (≈10 agreeing digits), versus ~1e-12 on the paper's
		// unit-reward models (asserted tightly in paper_test.go).
		tol := 5e-11 * rmax
		opts := regenrand.DefaultOptions()
		rrl, err := regenrand.NewRRL(model, rewards, 0, opts)
		if err != nil {
			return false
		}
		sr, err := regenrand.NewSR(model, rewards, opts)
		if err != nil {
			return false
		}
		ts := []float64{0.2 + rng.Float64(), 5 * (1 + rng.Float64()), 80 * (1 + rng.Float64())}
		a, err := rrl.TRR(ts)
		if err != nil {
			t.Logf("seed %d: RRL error: %v", seed, err)
			return false
		}
		b, err := sr.TRR(ts)
		if err != nil {
			return false
		}
		for i := range ts {
			if math.Abs(a[i].Value-b[i].Value) > tol {
				t.Logf("seed %d t=%v: RRL=%v SR=%v", seed, ts[i], a[i].Value, b[i].Value)
				return false
			}
		}
		// Oracle spot check at the middle time.
		oracle, err := regenrand.OracleTRR(model, rewards, ts[1])
		if err != nil {
			return false
		}
		if math.Abs(a[1].Value-oracle) > 1e-9 {
			t.Logf("seed %d t=%v: RRL=%v oracle=%v", seed, ts[1], a[1].Value, oracle)
			return false
		}
		// MRR agreement between the two series-based paths.
		am, err := rrl.MRR(ts[:2])
		if err != nil {
			return false
		}
		bm, err := sr.MRR(ts[:2])
		if err != nil {
			return false
		}
		for i := range am {
			if math.Abs(am[i].Value-bm[i].Value) > tol {
				t.Logf("seed %d MRR t=%v: RRL=%v SR=%v", seed, ts[i], am[i].Value, bm[i].Value)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(20000612))}
	if testing.Short() {
		cfg.MaxCount = 4
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}

// TestBandModelCrossValidation cross-checks RRL against SR on the banded
// deep-diameter model class of the cold-start benchmarks: the frontier
// growth phase covers most (or all) of the construction on these chains, so
// this is the end-to-end correctness check of the reachability-pruned
// stepping path on a model where it actually prunes.
func TestBandModelCrossValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	model, err := ctmc.RandomBand(rng, ctmc.BandOptions{States: 1500, Bandwidth: 5, Degree: 2, Absorbing: 1})
	if err != nil {
		t.Fatal(err)
	}
	rewards := ctmc.RandomRewards(rng, model, 1, false)
	opts := regenrand.DefaultOptions()
	rrl, err := regenrand.NewRRL(model, rewards, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := regenrand.NewSR(model, rewards, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := []float64{0.3, 1, 4, 15}
	a, err := rrl.TRR(ts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sr.TRR(ts)
	if err != nil {
		t.Fatal(err)
	}
	for i, tt := range ts {
		if diff := math.Abs(a[i].Value - b[i].Value); diff > 5e-11 {
			t.Errorf("t=%v: RRL=%.15e SR=%.15e diff %g", tt, a[i].Value, b[i].Value, diff)
		}
	}
}

// TestQuickRegenStateChoice verifies that the computed measures do not
// depend on which (non-absorbing) state is chosen as regenerative — only
// the cost does.
func TestQuickRegenStateChoice(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		model, err := ctmc.Random(rng, ctmc.RandomOptions{
			States: 4 + rng.Intn(12), ExtraDegree: 2, Absorbing: rng.Intn(2),
		})
		if err != nil {
			return false
		}
		rewards := ctmc.RandomRewards(rng, model, 2, false)
		const tol = 1e-10 // worst-case inversion floor at r_max = 2
		tt := []float64{3.7}
		var ref float64
		for _, r := range []int{0, 1, 2} {
			s, err := regenrand.NewRRL(model, rewards, r, regenrand.DefaultOptions())
			if err != nil {
				return false
			}
			res, err := s.TRR(tt)
			if err != nil {
				t.Logf("seed %d regen=%d: %v", seed, r, err)
				return false
			}
			if r == 0 {
				ref = res[0].Value
			} else if math.Abs(res[0].Value-ref) > tol {
				t.Logf("seed %d: regen state %d gives %v, state 0 gives %v", seed, r, res[0].Value, ref)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 10, Rand: rand.New(rand.NewSource(19770501))}
	if testing.Short() {
		cfg.MaxCount = 3
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Error(err)
	}
}

package regenrand_test

import (
	"math"
	"testing"

	"regenrand"
)

// TestPaperScaleUAAgreement runs the paper's actual G=20 availability
// experiment (3,841 states) over the full mission-time sweep and requires
// RRL and RSD to agree within combined error bounds — the substance behind
// Table 1 / Figure 3.
func TestPaperScaleUAAgreement(t *testing.T) {
	m, err := regenrand.BuildRAID(regenrand.DefaultRAIDParams(20), false)
	if err != nil {
		t.Fatal(err)
	}
	rewards := m.UnavailabilityRewards()
	opts := regenrand.DefaultOptions()
	rrl, err := regenrand.NewRRL(m.Chain, rewards, m.Pristine, opts)
	if err != nil {
		t.Fatal(err)
	}
	rsd, err := regenrand.NewRSD(m.Chain, rewards, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := []float64{1, 10, 100, 1000, 1e4, 1e5}
	a, err := rrl.TRR(ts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := rsd.TRR(ts)
	if err != nil {
		t.Fatal(err)
	}
	for i, tt := range ts {
		if diff := math.Abs(a[i].Value - b[i].Value); diff > 2.5e-12 {
			t.Errorf("t=%v: RRL UA=%.15e RSD UA=%.15e diff %g", tt, a[i].Value, b[i].Value, diff)
		}
		if a[i].Value <= 0 || a[i].Value >= 1e-3 {
			t.Errorf("t=%v: UA=%v outside plausible band", tt, a[i].Value)
		}
	}
	// Steady-state unavailability must be approached from below the sweep:
	// UA(1e5) ≈ UA(∞).
	pi, err := regenrand.SteadyState(m.Chain, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	uaInf := pi[m.Failed]
	if math.Abs(a[len(ts)-1].Value-uaInf) > 1e-9 {
		t.Errorf("UA(1e5)=%v should be near steady state %v", a[len(ts)-1].Value, uaInf)
	}
}

// TestPaperHeadlineUR pins the §3 headline numbers: UR(10⁵) for both model
// instances (paper: 0.50480 and 0.74750 — ours differ only through the
// calibrated P_R, see DESIGN.md), the RR/RRL step counts of Table 2
// (paper: 3157 and 5955), and the abscissa range (paper: 105–329).
func TestPaperHeadlineUR(t *testing.T) {
	if testing.Short() {
		t.Skip("G=40 instance takes ~2s")
	}
	cases := []struct {
		g          int
		paperUR    float64
		paperSteps int
	}{
		{20, 0.50480, 3157},
		{40, 0.74750, 5955},
	}
	for _, tc := range cases {
		m, err := regenrand.BuildRAID(regenrand.DefaultRAIDParams(tc.g), true)
		if err != nil {
			t.Fatal(err)
		}
		s, err := regenrand.NewRRL(m.Chain, m.UnreliabilityRewards(), m.Pristine, regenrand.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.TRR([]float64{1e5})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res[0].Value-tc.paperUR) > 0.01 {
			t.Errorf("G=%d: UR(1e5)=%v, paper %v (calibration drifted)", tc.g, res[0].Value, tc.paperUR)
		}
		if d := res[0].Steps - tc.paperSteps; d < -5 || d > 5 {
			t.Errorf("G=%d: steps=%d, paper %d", tc.g, res[0].Steps, tc.paperSteps)
		}
		if res[0].Abscissae < 20 || res[0].Abscissae > 1500 {
			t.Errorf("G=%d: abscissae=%d outside plausible band", tc.g, res[0].Abscissae)
		}
	}
}

// TestPaperScaleURSmallT cross-checks RRL against SR on the G=20
// unreliability model at the mission times where SR is affordable.
func TestPaperScaleURSmallT(t *testing.T) {
	m, err := regenrand.BuildRAID(regenrand.DefaultRAIDParams(20), true)
	if err != nil {
		t.Fatal(err)
	}
	rewards := m.UnreliabilityRewards()
	opts := regenrand.DefaultOptions()
	rrl, err := regenrand.NewRRL(m.Chain, rewards, m.Pristine, opts)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := regenrand.NewSR(m.Chain, rewards, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := []float64{1, 10, 100}
	a, err := rrl.TRR(ts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sr.TRR(ts)
	if err != nil {
		t.Fatal(err)
	}
	for i, tt := range ts {
		if diff := math.Abs(a[i].Value - b[i].Value); diff > 2.5e-12 {
			t.Errorf("t=%v: RRL=%.15e SR=%.15e diff %g", tt, a[i].Value, b[i].Value, diff)
		}
	}
	// Interval measures agree too.
	am, err := rrl.MRR(ts)
	if err != nil {
		t.Fatal(err)
	}
	bm, err := sr.MRR(ts)
	if err != nil {
		t.Fatal(err)
	}
	for i, tt := range ts {
		if diff := math.Abs(am[i].Value - bm[i].Value); diff > 2.5e-12 {
			t.Errorf("MRR t=%v: RRL=%.15e SR=%.15e diff %g", tt, am[i].Value, bm[i].Value, diff)
		}
	}
}

// TestTable1StepShape asserts the qualitative content of Table 1: RR/RRL
// step counts grow logarithmically for large t while RSD saturates, and
// both are minuscule against SR's Λt.
func TestTable1StepShape(t *testing.T) {
	m, err := regenrand.BuildRAID(regenrand.DefaultRAIDParams(20), false)
	if err != nil {
		t.Fatal(err)
	}
	rewards := m.UnavailabilityRewards()
	opts := regenrand.DefaultOptions()
	rrl, err := regenrand.NewRRL(m.Chain, rewards, m.Pristine, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rrl.TRR([]float64{1e3, 1e4, 1e5})
	if err != nil {
		t.Fatal(err)
	}
	d1 := res[1].Steps - res[0].Steps
	d2 := res[2].Steps - res[1].Steps
	if d1 <= 0 || d2 <= 0 || d2 > 2*d1 {
		t.Errorf("RR/RRL growth not logarithmic: steps %d %d %d", res[0].Steps, res[1].Steps, res[2].Steps)
	}
	lambdaT := m.Chain.MaxOutRate() * 1e5
	if float64(res[2].Steps) > 0.01*lambdaT {
		t.Errorf("K(1e5)=%d not ≪ Λt=%g", res[2].Steps, lambdaT)
	}

	rsd, err := regenrand.NewRSD(m.Chain, rewards, opts)
	if err != nil {
		t.Fatal(err)
	}
	rres, err := rsd.TRR([]float64{1e3, 1e4, 1e5})
	if err != nil {
		t.Fatal(err)
	}
	if !(rres[0].Steps == rres[1].Steps && rres[1].Steps == rres[2].Steps) {
		t.Errorf("RSD steps did not saturate: %d %d %d", rres[0].Steps, rres[1].Steps, rres[2].Steps)
	}
}

// Package regenrand provides transient solvers for dependability and
// performability measures of continuous-time Markov chains (CTMCs),
// reproducing
//
//	J.A. Carrasco, "Transient Analysis of Dependability/Performability
//	Models by Regenerative Randomization with Laplace Transform Inversion",
//	IPDPS 2000 Workshops, LNCS 1800, pp. 1226–1235.
//
// Six methods are implemented behind a common Solver interface:
//
//   - SR  — standard randomization (uniformization), the classical baseline;
//   - RSD — randomization with steady-state detection, for irreducible models;
//   - RR  — regenerative randomization: a truncated transformed chain V_{K,L}
//     is built from regeneration statistics and solved by SR;
//   - RRL — the paper's contribution: the transformed chain is solved in
//     closed form in the Laplace domain and inverted numerically
//     (Durbin's formula, T = 8t, epsilon-algorithm acceleration);
//   - AU  — adaptive uniformization (van Moorsel & Sanders) and
//   - MS  — multistep randomization (Reibman & Trivedi), the related-work
//     methods the paper's introduction positions RR/RRL against.
//
// RR and RRL additionally implement BoundingSolver, producing certified
// two-sided enclosures of each measure (the construction of the companion
// technical report).
//
// Two measures are supported at batches of time points: the transient
// reward rate TRR(t) = E[r_{X(t)}] and the mean reward rate
// MRR(t) = (1/t)∫₀ᵗ TRR(τ)dτ. Dependability measures are special cases:
// point unavailability UA(t) (reward 1 on down states of an irreducible
// model), unreliability UR(t) (reward 1 on an absorbing failure state),
// interval unavailability (MRR of UA rewards), and general performability
// rewards.
//
// A model is described with a Builder:
//
//	b := regenrand.NewBuilder(2)
//	b.AddTransition(0, 1, 1e-3) // failure
//	b.AddTransition(1, 0, 0.5)  // repair
//	b.SetInitial(0, 1)
//	model, _ := b.Build()
//	solver, _ := regenrand.NewRRL(model, []float64{0, 1}, 0, regenrand.DefaultOptions())
//	results, _ := solver.TRR([]float64{1, 10, 100, 1000})
//
// Every solver guarantees an absolute error at most Options.Epsilon on each
// returned value (down to the double-precision floor of ~1e-13 relative;
// the paper's experiments use ε = 1e-12).
//
// # Execution layer
//
// The solvers share a fused, pooled and batch-parallel execution layer.
// The randomization step — vector–matrix product, zeroing of
// regenerative/absorbing destinations, ℓ₁ mass and reward dot-product — is
// one kernel pass (sparse.Matrix.StepFused) for SR, RSD, the RR/RRL series
// build and AU (MS runs its dense block build on the same worker pool
// instead); the RRL transform evaluates
// its eight coefficient polynomials in a single interleaved sweep per
// abscissa; and batches of time points fan out over a persistent worker
// pool (internal/par), since each Laplace inversion and each Poisson-window
// sum is independent. Parallel execution is deterministic: kernel
// reductions use fixed chunk boundaries with ordered compensated partials,
// so every result is bitwise-identical for every GOMAXPROCS setting.
// Solvers remain single-caller objects (see core.Solver's concurrency
// contract); parallelism is internal.
//
// Performance is tracked PR-over-PR with cmd/benchjson, which runs the
// Benchmark* suite and emits a BENCH_<date>.json trajectory file; see the
// "Performance notes" section of ROADMAP.md for the current numbers.
//
// The package also ships the paper's evaluation workload: parametric
// dependability models of a level-5 RAID array (BuildRAID), and a harness
// (cmd/paperrepro) that regenerates every table and figure of the paper's
// evaluation section.
package regenrand

// Package regenrand provides transient solvers for dependability and
// performability measures of continuous-time Markov chains (CTMCs),
// reproducing
//
//	J.A. Carrasco, "Transient Analysis of Dependability/Performability
//	Models by Regenerative Randomization with Laplace Transform Inversion",
//	IPDPS 2000 Workshops, LNCS 1800, pp. 1226–1235.
//
// Six methods are implemented behind a common Solver interface:
//
//   - SR  — standard randomization (uniformization), the classical baseline;
//   - RSD — randomization with steady-state detection, for irreducible models;
//   - RR  — regenerative randomization: a truncated transformed chain V_{K,L}
//     is built from regeneration statistics and solved by SR;
//   - RRL — the paper's contribution: the transformed chain is solved in
//     closed form in the Laplace domain and inverted numerically through a
//     pluggable backend (Durbin's formula with T = 8t and epsilon-algorithm
//     acceleration by default; see "Inversion backends and error budgets");
//   - AU  — adaptive uniformization (van Moorsel & Sanders) and
//   - MS  — multistep randomization (Reibman & Trivedi), the related-work
//     methods the paper's introduction positions RR/RRL against.
//
// Two measures are supported at batches of time points: the transient
// reward rate TRR(t) = E[r_{X(t)}] and the mean reward rate
// MRR(t) = (1/t)∫₀ᵗ TRR(τ)dτ. Dependability measures are special cases:
// point unavailability UA(t), unreliability UR(t), interval unavailability,
// and general performability rewards. Every solver guarantees an absolute
// error at most Options.Epsilon on each returned value (down to the
// double-precision floor of ~1e-13 relative; the paper uses ε = 1e-12).
//
// # Compile/query lifecycle
//
// The paper's central economics are that the expensive work — uniformizing
// the generator and stepping out the regenerative series that characterizes
// the transformed chain V_{K,L} — is done once, after which every measure
// and time point is cheap. The package is structured around exactly that
// split. Compile produces an immutable, goroutine-safe CompiledModel
// holding the shared artifacts: the uniformized sparse chain with its
// fused-kernel chunk plan, and (when a regenerative state is given) the
// reward-free regeneration statistics with their stepped vectors retained.
// Reward vectors are then layered on as cheap views, so one compile serves
// TRR, MRR, availability and reliability measures under many reward
// structures:
//
//	model, _ := b.Build() // a Builder-constructed CTMC
//	cm, _ := regenrand.Compile(model, regenrand.CompileOptions{
//		Options:    regenrand.DefaultOptions(),
//		RegenState: 0, // the fault-free initial state
//	})
//
//	// First rewards vector: point unavailability.
//	ua, _ := regenrand.IndicatorRewards(model.N(), downStates...)
//	resUA, _ := cm.Query(regenrand.Query{
//		Method: regenrand.MethodRRL, Measure: regenrand.MeasureTRR,
//		Rewards: ua, Times: []float64{1, 10, 100, 1000},
//	})
//
//	// Second rewards vector against the SAME compiled artifacts: only the
//	// coefficient binding and the inversion are paid, not the build.
//	perf := regenrand.RewardsFrom(model.N(), throughputOf)
//	resPerf, _ := cm.Query(regenrand.Query{
//		Method: regenrand.MethodRRL, Measure: regenrand.MeasureMRR,
//		Rewards: perf, Times: []float64{1, 10, 100, 1000},
//	})
//
// Batches go through a query planner before anything executes. QueryBatch
// (and QueryBoundsBatch, whose RRL enclosures ride the fused value+bounds
// inversion and cost barely more than the values alone) first deduplicates
// byte-identical requests — a batch that submits the same (method, measure,
// rewards, times) twice solves it once and fans the shared result out —
// and then groups RR/RRL requests by horizon class (the exact certified
// horizon, the max of a request's times). Each group's distinct reward
// vectors execute as dot lanes of ONE multi-lane stepping pass: on a
// non-retaining compiled model the group rides regen.Basis.BuildMany (every
// stored matrix entry is loaded once for all lanes, so a 32-measure
// same-horizon batch costs about one series construction instead of 32 —
// measured ≥5× end-to-end throughput on the paper's G=20 model,
// BenchmarkQueryPlanner); on a retaining model the group's coefficients
// replay through the grouped multi-rewards dot kernel (the retained
// vectors stream once per eight-vector block for all measures). Grouping
// fires only when a horizon class holds at least two distinct measures —
// single queries keep the exact lazy path — and planning never changes
// results: grouped constructions are bitwise-identical to their per-query
// counterparts, so a planned batch equals a serial per-query loop bit for
// bit. Query results are a pure function of the request: N goroutines
// sharing one CompiledModel get answers bitwise-identical to a serial run,
// which is what makes the compiled artifact a sound unit of sharing for a
// server (see cmd/regenserve, an HTTP/JSON facade over exactly this API —
// one /v1/query request carrying an array of query objects is planned as
// one batch — with a CompileCache keying compiled models by generator
// content hash so repeated compiles are free).
//
// On the paper's G=20 RAID model, a second query against an already
// compiled model is ~20× faster than the classic construct-and-solve path
// for a new time batch and ~7× faster for a new rewards vector (see
// "Performance notes" in ROADMAP.md). Retention of the stepped vectors
// costs O(8·states·K) bytes; CompileOptions.DisableRetention trades the
// rebinding speed back for O(states) memory, and
// CompileOptions.CompactRetention keeps float32 roundings instead — half
// the retention memory, with the quantization error (≤ 2⁻²⁴·rmax per
// coefficient) charged against an explicit slice of the series truncation
// budget so every result stays certified within Epsilon. Compact retention
// therefore needs a loose epsilon (roughly ≥ 1e-6·rmax; queries report a
// budget error otherwise) and its RR/RRL results are deterministic but not
// bitwise-equal to a full-precision compile — the right trade for large
// models where the retained series dominates memory, not for
// paper-strength ε = 1e-12 reproduction.
//
// The classic constructors remain and are thin wrappers over the same
// machinery, with unchanged semantics and bitwise-identical outputs:
//
//	b := regenrand.NewBuilder(2)
//	b.AddTransition(0, 1, 1e-3) // failure
//	b.AddTransition(1, 0, 0.5)  // repair
//	b.SetInitial(0, 1)
//	model, _ := b.Build()
//	solver, _ := regenrand.NewRRL(model, []float64{0, 1}, 0, regenrand.DefaultOptions())
//	results, _ := solver.TRR([]float64{1, 10, 100, 1000})
//
// A Builder also records the first validation error (negative rate,
// out-of-range state, self loop) and reports it from Build, so generator
// loops that drop per-call errors still fail at construction rather than
// deep inside a solve.
//
// # Horizon bucketing and series extension
//
// Two compile-level mechanisms let near-miss traffic share series work
// across requests. First, every RR/RRL series is grown by in-place
// incremental extension: the chains stepped for a horizon are kept (in the
// retained basis, or in a per-measure incremental store on non-retaining
// compiles), and a later, longer horizon appends only the missing steps —
// querying t=200 after t=100 pays steps K(100)..K(200), not a rebuild.
// Extension is append-only and deterministic, so it is bitwise-invisible:
// a model that served t₁ answers t₂ exactly like a fresh compile asked t₂
// first, a cancelled extension leaves a valid prefix for the retry, and
// concurrent extenders all read the same published coefficients (tested
// under -race). Second, CompileOptions.HorizonBuckets opts into horizon
// bucketing: each query horizon is rounded UP to the nearest point of a
// geometric grid with HorizonBuckets points per decade, so horizons that
// differ only by a few percent collapse onto one grid point — one deeper
// series serves the whole bucket, the planner groups near-miss batches
// into one multi-lane pass (BenchmarkNearMissHorizons: a 32-query spread
// over [t, 1.5t] prices like ideal same-horizon traffic, ~6× over
// exact-bit grouping), and repeat traffic hits the series cache instead of
// building again. Bucketing rounds up only, so the bucketed series is
// truncated for a deeper horizon than requested and every answer remains
// certified within Epsilon — but answers are evaluated from a
// differently-truncated series and are therefore not bitwise-identical to
// an unbucketed compile, which is why the option is opt-in and part of the
// compile content key (bucketed and exact models never share cache
// entries). EffectiveHorizon reports the grid point a horizon is served
// at; cmd/regenserve discloses it per row as "bucketed_horizon" and
// exports the sharing counters (ReadEngineStats) as /varz variables.
//
// # Cancellation and serving robustness
//
// Every compile/query entry point has a context-taking variant —
// CompileCtx, QueryCtx, QueryBoundsCtx, QueryBatchCtx, QueryBoundsBatchCtx,
// CompileCache.CompileCtx — and the context-free forms are thin
// context.Background wrappers, so adopting deadlines changes no results.
// The engine checkpoints between units of work (each series stepping
// iteration, each planner group, each Laplace abscissa block, each worker
// fan-out item) and never inside one, so cancellation lands within a couple
// of chunk latencies and the arithmetic of completed work is untouched:
// a cancelled construction leaves a valid append-only prefix, and a retry
// resumes (or deterministically re-runs) to answers bitwise-identical to an
// uncancelled run. Cancelled calls return an error wrapping the context
// cause plus a core.CancelError carrying how many stepping iterations and
// inversion abscissae completed before the abort — the partial-work
// accounting a serving layer can log or bill. Batch variants fill every
// row: rows finished before the deadline keep their results, the rest
// carry the cancellation error.
//
// The CompileCache is safe to share under cancellation: concurrent misses
// on one key still compile once, the constructor runs detached from any
// single caller's context, and only when the last waiter abandons an
// in-flight compile is it cancelled — one client's deadline can neither
// kill a compile other clients are waiting on nor poison the cache (an
// abandoned compile is dropped, never cached). NewCompileCacheBytes adds a
// retained-bytes budget on top of the entry capacity, fed by
// CompiledModel.RetainedBytes (re-measured as chains grow with query
// horizons), evicting least-recently-used models when compiled artifacts
// outgrow memory. CompileOptions.PrebuildHorizon optionally moves chain
// extension into the compile so a deadline covers it; it is pure warmup and
// does not change the model's content key or any result.
//
// # Snapshots and warm restarts
//
// A compiled artifact is expensive state — the generator analysis plus
// every retained chain step — and all of it dies with the process. The
// snapshot layer makes it durable: CompiledModel.Snapshot serializes the
// model, the compile options, and the retained chains into a versioned,
// per-section-checksummed binary blob (internal/snapshot), and LoadSnapshot
// rebuilds a compiled model whose answers and whose further chain extension
// are bitwise-identical to the original's. Chains are stored as contiguous
// slabs at 8-aligned offsets, so a load is a checksum pass plus zero-copy
// views, not a re-stepping pass.
//
// CompileCache.SetSnapshotStore attaches a store (internal/store; the
// local-directory backend writes temp-fsync-rename atomically, so a crash
// mid-write can never leave a torn blob under a live name) and turns cache
// misses into load-throughs: hit the store, decode, verify, serve — or
// recompile and write back in the background. CompileCache.WarmStart and
// FlushSnapshots are the boot- and drain-time bulk counterparts. Nothing
// loaded is trusted: a snapshot must pass its CRCs, a content-key
// recomputation over the model it rebuilds, and chain cross-validation;
// whatever fails is quarantined and recompiled — a bad snapshot can cost a
// recompile, never a wrong answer. ReadEngineStats exposes the
// load/write/failure counters.
//
// The same Store interface has a network backend: internal/store/objstore
// speaks the S3 HTTP API (path-style, SigV4-signed, stdlib-only) so one
// node's compile becomes every node's warm start. The client performs no
// retries itself; robustness is composed from wrappers —
// store.WithHedge(...) races a second GET against a slow first,
// store.WithRetryPolicy(...) retries transient failures with full-jitter
// backoff under the caller's context deadline, and store.WithBreaker(...)
// trips after consecutive failed store conversations so a dead store costs
// nanoseconds per miss, not a timeout each. Write-back uses conditional
// PUTs (If-None-Match: *), so when many nodes compile the same content key
// concurrently exactly one object is stored; corrupt remote blobs are
// quarantined server-side (copy to *.corrupt, then delete). Every store
// call is advisory: when the store is slow, lying, or gone, the engine
// recompiles — degraded cost, never a degraded answer.
//
// Robustness is testable on purpose: internal/faultpoint exposes named
// fault-injection sites in series stepping ("regen.step"), Laplace
// inversion blocks ("laplace.block", plus the per-backend
// "laplace.block.durbin" and "laplace.block.euler" so chaos tests can fail
// one backend and assert the other is untouched), cache population
// ("cache.populate"),
// snapshot store I/O ("store.read", "store.write"), object-store network
// requests ("store.net.read", "store.net.write", "store.net.list") and
// snapshot decoding
// ("snapshot.decode") that tests arm to inject delays, errors, or panics
// (REGENRAND_FAULTPOINTS arms them from the environment, rejecting unknown
// site names at parse time). Worker-pool and cache-constructor panics are
// recovered into errors — a poisoned reward vector fails its query, not the
// process — which is what lets cmd/regenserve run a chaos selfcheck
// asserting the server stays live, post-fault answers are
// bitwise-identical to a quiet run, and a kill-and-restart over the
// snapshot directory resumes bitwise where the dead process stopped.
//
// # Execution layer
//
// The solvers share a fused, pooled and batch-parallel execution layer.
// The randomization step — vector–matrix product, zeroing of
// regenerative/absorbing destinations, ℓ₁ mass and reward dot-product — is
// one kernel pass (sparse.Matrix.StepFused) for SR, RSD, the RR/RRL series
// build and AU (MS runs its dense block build on the same worker pool
// instead); rebinding a reward vector to retained step vectors replays the
// dot side of that kernel two vectors per sweep
// (sparse.Matrix.RewardDotFusedBatch); batches of time points and batches
// of queries fan out over a persistent worker pool (internal/par); and
// per-query scratch (stepping buffers, birth-process tables,
// epsilon-acceleration diagonals) comes from per-size-class pools
// (internal/pool), so steady-state query traffic runs allocation-free on
// the hot path. Parallel execution is deterministic: kernel reductions use
// fixed chunk boundaries with ordered compensated partials, so every
// result is bitwise-identical for every GOMAXPROCS setting. The classic
// Solver objects remain single-caller (see core.Solver's concurrency
// contract); CompiledModel is the concurrent entry point.
//
// The series construction — the K (+L) full-model DTMC steps of the
// paper's Tables 1–2, the dominant cost of a cold construct-and-solve —
// runs on a frontier-restricted stepping layer. u_0 = e_r, so u_k is
// supported only on states reachable in ≤ k steps: a per-matrix BFS
// (sparse.Matrix.FrontierFor, sourced at the regenerative state plus the
// initial distribution's support) lays the rows out in level order with a
// chunk plan whose prefixes cover the level sets, and early steps sweep
// only the active prefix instead of all n rows (sparse.Frontier). Once the
// frontier saturates, stepping switches to the full-sweep kernels: a
// quad-row lockstep gather (four independent per-row accumulator chains;
// per-row sums bitwise-identical to the scalar reference), four-block
// splits for very-long rows, four position-interleaved Kahan chains for
// the mass/dot reductions, and a straight-line single-chunk path for
// matrices below ~32k stored entries that skips the pool/partials
// machinery entirely. When α_r < 1 the main and primed chains step in
// lockstep through one matrix traversal (sparse.Frontier.StepFusedMulti /
// sparse.Matrix.StepFusedMulti — each stored entry loaded once for all
// lanes), and regen.BuildManyWithDTMC runs any number of reward vectors as
// extra dot lanes of one construction (row-interleaved rewards layout, a
// register-chain dot replay for the saturated single-chunk phase, and
// lane-group parallelism on multicore keep the per-lane marginal cost a
// small fraction of a standalone build). During the frontier growth phase
// the level-permuted rows are re-bucketed by length into quad-row groups
// (sparse.Frontier's gorder), so the growth sweep retires entries at the
// same four-chain rate as the saturated kernels; per-row sums are
// bitwise-unchanged. The multi-lane accumulator scratch is a flat pooled
// vector (internal/pool size classes), so lockstep stepping is
// allocation-free at steady state. Retained step vectors come from slab
// arenas — float64 or, under CompileOptions.CompactRetention, float32 at
// half the memory — so the compile phase's reward-rebinding sweeps stream
// contiguous memory. Every path is deterministic per step index, and the
// reward-replay kernels reproduce the exact association of whichever
// kernel ran each step — so compiled-measure bindings remain
// bitwise-identical to fused builds (compact retention replays the same
// association over the rounded vectors).
//
// The Laplace side — the cost that dominates a steady-state RRL query —
// runs on blocked transform kernels: the inverter (internal/laplace)
// requests abscissae in speculative blocks of eight, and the transform
// evaluator (internal/rrl) sweeps its packed coefficient array once per
// block, updating all eight abscissae per coefficient load. Eight
// independent power recurrences hide the floating-point latency that
// serializes a one-abscissa sweep, and coefficient memory traffic falls
// 8×. On top of the blocking, each abscissa stops its ascending sweep at
// the degree where the geometric tail bound suffix[d]·|z|^d (suffix sums of
// coefficient magnitudes, precomputed once per transform) falls below a
// tail tolerance chosen so the discarded mass stays below the sweep's own
// rounding noise and the accumulated truncation stays a small fraction of
// the inversion's stopping tolerance (≈2^-9 for typical runs, ≤5% even at
// the term cap; see internal/rrl for the budget derivation); since
// |z| = Λ/|s+Λ| shrinks as the Durbin index grows, late abscissae truncate
// after a small fraction of the degree-K array. Certified bounds
// share the machinery: one joint inversion evaluates the value and
// truncation-mass transforms at shared abscissae and shared sweeps
// (laplace.InvertJoint), with each output frozen by its own stopping rule
// so values are bit-identical to a plain query. A scalar full-sweep
// reference kernel is retained and the blocked/truncated/fused paths are
// equivalence-tested against it at the ulp level.
//
// # Inversion backends and error budgets
//
// The numerical inversion behind RRL is pluggable. A backend
// (internal/laplace.Inverter) consumes the same block-of-8 transform
// evaluator, the same fused value+bounds path, and the same cancellation
// accounting; what it chooses is the sampling contour and the convergence
// acceleration. Two backends ship:
//
//   - "durbin" (the default, DurbinInverter) is the paper's configuration:
//     the trapezoidal discretization at period T = 8t with Wynn's
//     epsilon-algorithm accelerating the partial sums. Results are
//     bitwise-identical to every release since the package existed.
//   - "euler" (EulerInverter) is the Abate–Whitt Euler method: the same
//     discretization taken at T = t, where consecutive terms rotate by
//     exactly (−1)^k, accelerated by binomial (Euler) averaging of the last
//     twelve partial sums with per-output Kahan-compensated weights. The
//     alternating series converges in far fewer terms, so a typical query
//     spends ~35% fewer transform evaluations per time point
//     (BenchmarkRRLInverter) — the abscissae count that dominates
//     steady-state RRL cost.
//
// The backends differ in how the error budget is spent, not in how much of
// it there is: both charge discretization against the same ε carve-out and
// stop by the same certified rules, so either answer is within
// Options.Epsilon. The trade is the roundoff floor. Euler's shorter period
// needs a larger damping e^{a·t}, which amplifies machine rounding of the
// summed transform values; the backend computes that floor a priori
// (e^{a·t}·2⁻⁵⁰·f̃max against the stopping tolerance) and REJECTS the
// request with a budget error when the configuration cannot be certified —
// with the TRR damping rule the floor admits ε down to ≈ 3e-9·rmax, so the
// paper-strength ε = 1e-12 stays on Durbin while loose serving tolerances
// (ε = 1e-6) take the cheaper contour. A rejection is an error, never a
// silently degraded answer.
//
// Selection is plumbed through every sharing layer: RRLConfig.Inverter picks
// the compile-wide backend and is part of the compile content key (durbin
// and euler compiles of one model are distinct cache entries and distinct
// snapshot blobs, and the choice survives a snapshot round trip);
// Query.Inverter overrides it per request (RRL only — methods that never
// invert reject the field); the query planner fingerprints the backend and
// never groups queries with different effective backends into one lane
// pass; and cmd/regenserve exposes the compile-level field and the
// per-query override on the wire, disclosing the effective backend on every
// RRL result row. The backends stand as oracles for each other: a standing
// test inverts the paper's Fig 3/4 models and a 10⁴-state band through
// both and requires agreement within the combined certified budgets.
//
// Performance is tracked PR-over-PR with cmd/benchjson, which runs the
// Benchmark* suite and emits a BENCH_<date>.json trajectory file;
// `benchjson -diff old.json new.json` prints per-benchmark deltas and
// flags regressions beyond 10%. See the "Performance notes" section of
// ROADMAP.md for current numbers.
//
// The package also ships the paper's evaluation workload: parametric
// dependability models of a level-5 RAID array (BuildRAID), and a harness
// (cmd/paperrepro) that regenerates every table and figure of the paper's
// evaluation section.
package regenrand
